package gateway

import (
	"hash/maphash"
	"math"
	"sync"
	"time"
)

// limiterShards spreads principals over independent mutexes so hot
// /validate traffic from many principals doesn't serialize on one lock.
const limiterShards = 16

// shardSweepSize is the per-shard bucket count past which allow() sweeps
// out idle buckets while it already holds the shard lock. It bounds
// memory against principal churn (every request with a fresh key —
// honest or abusive — otherwise grows the map forever).
const shardSweepSize = 8192

// maxRetryAfterSec caps the computed Retry-After header: past a minute
// the number stops being advice and starts being a lie (the client's
// own bucket may refill from other traffic patterns first).
const maxRetryAfterSec = 60

// limiter is a sharded per-key token bucket: each key accrues rate
// tokens per second up to burst, and a request spends one. A nil
// limiter admits everything (rate limiting disabled).
type limiter struct {
	rate        float64
	burst       float64
	now         func() time.Time
	seed        maphash.Seed
	capPerShard int // sweep/evict threshold, shardSweepSize unless a test shrinks it
	shard       [limiterShards]limiterShard
}

type limiterShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter admitting rate requests/second sustained
// with bursts of burst per key. rate <= 0 returns nil (disabled); a
// burst below 1 is raised to 1 so a conforming key can ever succeed.
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	l := &limiter{rate: rate, burst: float64(burst), now: now, seed: maphash.MakeSeed(), capPerShard: shardSweepSize}
	for i := range l.shard {
		l.shard[i].buckets = make(map[string]*bucket)
	}
	return l
}

// allow spends one token from key's bucket. When no token is available
// it reports how many whole seconds until one will be — the Retry-After
// a client should honor — computed from the actual deficit, never a
// hardcoded guess.
func (l *limiter) allow(key string) (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	s := &l.shard[maphash.String(l.seed, key)%limiterShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[key]
	if b == nil {
		if len(s.buckets) >= l.capPerShard && l.sweep(s, now) == 0 {
			// Nothing idle to reclaim: every resident bucket is mid-window.
			// Evict the least recently touched one instead of growing the
			// map without bound under a key-churn flood. That bucket's
			// token deficit is forgotten — its key gets a fresh burst on
			// return — which is the bounded-memory trade: the limiter
			// stays O(capPerShard) even against an adversary minting keys.
			l.evictLRU(s)
		}
		s.buckets[key] = &bucket{tokens: l.burst - 1, last: now}
		return true, 0
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false, l.retryAfter(b.tokens)
	}
	b.tokens--
	return true, 0
}

// retryAfter converts a token deficit into whole seconds until one token
// is available, clamped to [1, maxRetryAfterSec].
func (l *limiter) retryAfter(tokens float64) int {
	sec := int(math.Ceil((1 - tokens) / l.rate))
	if sec < 1 {
		sec = 1
	}
	if sec > maxRetryAfterSec {
		sec = maxRetryAfterSec
	}
	return sec
}

// sweep drops buckets idle long enough to have refilled completely —
// indistinguishable from fresh ones, so forgetting them changes no
// verdict — and reports how many it freed. Called with the shard lock
// held.
func (l *limiter) sweep(s *limiterShard, now time.Time) (freed int) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range s.buckets {
		if now.Sub(b.last) >= idle {
			delete(s.buckets, key)
			freed++
		}
	}
	return freed
}

// evictLRU removes the single least-recently-touched bucket. One pass
// over the shard; called with the shard lock held, only when a sweep
// freed nothing.
func (l *limiter) evictLRU(s *limiterShard) {
	var (
		victim string
		oldest time.Time
		found  bool
	)
	for key, b := range s.buckets {
		if !found || b.last.Before(oldest) {
			victim, oldest, found = key, b.last, true
		}
	}
	if found {
		delete(s.buckets, victim)
	}
}
