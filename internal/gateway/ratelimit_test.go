package gateway

import (
	"fmt"
	"hash/maphash"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// admit strips the Retry-After value for tests that only care about the
// verdict.
func admit(l *limiter, key string) bool {
	ok, _ := l.allow(key)
	return ok
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(2, 3, clk.now) // 2 req/s sustained, bursts of 3

	for i := 0; i < 3; i++ {
		if !admit(l, "alice") {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if admit(l, "alice") {
		t.Fatal("request past the burst admitted")
	}
	if !admit(l, "bob") {
		t.Fatal("independent key refused by alice's empty bucket")
	}

	clk.advance(500 * time.Millisecond) // refills one token at 2/s
	if !admit(l, "alice") {
		t.Fatal("refilled token refused")
	}
	if admit(l, "alice") {
		t.Fatal("second request on a single refilled token admitted")
	}

	clk.advance(time.Hour) // refill caps at burst, not rate*hours
	for i := 0; i < 3; i++ {
		if !admit(l, "alice") {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if admit(l, "alice") {
		t.Fatal("idle accrual exceeded the burst cap")
	}
}

func TestLimiterDisabledAndMinimumBurst(t *testing.T) {
	if l := newLimiter(0, 5, time.Now); l != nil {
		t.Error("rate 0 should disable the limiter")
	}
	var nilLimiter *limiter
	if !admit(nilLimiter, "anyone") {
		t.Error("nil limiter must admit everything")
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 0, clk.now) // burst raised to 1
	if !admit(l, "k") {
		t.Error("burst<1 must still admit a conforming key")
	}
}

func TestLimiterRetryAfterComputed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(0.5, 1, clk.now) // one token per 2s

	if !admit(l, "k") {
		t.Fatal("first request refused")
	}
	ok, retry := l.allow("k")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != 2 { // deficit 1 token at 0.5/s = 2s
		t.Errorf("Retry-After = %d, want 2", retry)
	}

	clk.advance(time.Second) // half a token accrued
	if ok, retry = l.allow("k"); ok || retry != 1 {
		t.Errorf("after 1s: ok=%v retry=%d, want refused with Retry-After 1", ok, retry)
	}

	// A very slow bucket's advice is clamped, not absurd.
	slow := newLimiter(0.001, 1, clk.now)
	if !admit(slow, "k") {
		t.Fatal("slow bucket's burst refused")
	}
	if _, retry = slow.allow("k"); retry != maxRetryAfterSec {
		t.Errorf("slow-bucket Retry-After = %d, want clamp to %d", retry, maxRetryAfterSec)
	}
}

func TestLimiterSweepBoundsMemory(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(100, 1, clk.now) // idle horizon: 10ms

	// Fill well past the sweep threshold with distinct keys (principal
	// churn), advancing the clock so earlier buckets go idle.
	const keys = limiterShards*shardSweepSize + 4096
	for i := 0; i < keys; i++ {
		admit(l, fmt.Sprintf("key-%d", i))
		if i%1024 == 0 {
			clk.advance(20 * time.Millisecond)
		}
	}
	total := 0
	for i := range l.shard {
		l.shard[i].mu.Lock()
		total += len(l.shard[i].buckets)
		l.shard[i].mu.Unlock()
	}
	if total > limiterShards*shardSweepSize+limiterShards {
		t.Errorf("%d buckets retained across %d keys; the sweep is not bounding memory", total, keys)
	}
}

// sameShardKeys finds n distinct keys that l hashes into one shard, so a
// test can exercise per-shard behavior deterministically.
func sameShardKeys(l *limiter, n int) []string {
	want := maphash.String(l.seed, "seed-key") % limiterShards
	keys := []string{"seed-key"}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if maphash.String(l.seed, k)%limiterShards == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestLimiterEvictsLRUWhenSweepFreesNothing(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 60, clk.now) // idle horizon 60s: nothing sweeps below
	l.capPerShard = 3
	keys := sameShardKeys(l, 4)
	shard := &l.shard[maphash.String(l.seed, keys[0])%limiterShards]

	// Insert three buckets at distinct times; keys[0] ends up oldest.
	for _, k := range keys[:3] {
		admit(l, k)
		clk.advance(10 * time.Millisecond)
	}
	// Fourth key at the cap: the sweep finds nothing idle, so the LRU
	// bucket must go — the map may not grow past the cap.
	if !admit(l, keys[3]) {
		t.Fatal("insert at cap refused")
	}
	shard.mu.Lock()
	defer shard.mu.Unlock()
	if len(shard.buckets) != 3 {
		t.Fatalf("shard holds %d buckets past capPerShard=3", len(shard.buckets))
	}
	if _, ok := shard.buckets[keys[0]]; ok {
		t.Error("oldest bucket survived LRU eviction")
	}
	for _, k := range keys[1:] {
		if _, ok := shard.buckets[k]; !ok {
			t.Errorf("bucket %q missing; LRU evicted the wrong victim", k)
		}
	}
}

func TestLimiterStaysBoundedUnderKeyFlood(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 60, clk.now) // nothing ever goes idle in this test
	l.capPerShard = 8
	for i := 0; i < 4096; i++ {
		admit(l, fmt.Sprintf("flood-%d", i))
	}
	for i := range l.shard {
		l.shard[i].mu.Lock()
		n := len(l.shard[i].buckets)
		l.shard[i].mu.Unlock()
		if n > l.capPerShard {
			t.Fatalf("shard %d grew to %d buckets, cap %d", i, n, l.capPerShard)
		}
	}
}
