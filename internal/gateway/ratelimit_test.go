package gateway

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(2, 3, clk.now) // 2 req/s sustained, bursts of 3

	for i := 0; i < 3; i++ {
		if !l.allow("alice") {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if l.allow("alice") {
		t.Fatal("request past the burst admitted")
	}
	if !l.allow("bob") {
		t.Fatal("independent key refused by alice's empty bucket")
	}

	clk.advance(500 * time.Millisecond) // refills one token at 2/s
	if !l.allow("alice") {
		t.Fatal("refilled token refused")
	}
	if l.allow("alice") {
		t.Fatal("second request on a single refilled token admitted")
	}

	clk.advance(time.Hour) // refill caps at burst, not rate*hours
	for i := 0; i < 3; i++ {
		if !l.allow("alice") {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if l.allow("alice") {
		t.Fatal("idle accrual exceeded the burst cap")
	}
}

func TestLimiterDisabledAndMinimumBurst(t *testing.T) {
	if l := newLimiter(0, 5, time.Now); l != nil {
		t.Error("rate 0 should disable the limiter")
	}
	var nilLimiter *limiter
	if !nilLimiter.allow("anyone") {
		t.Error("nil limiter must admit everything")
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 0, clk.now) // burst raised to 1
	if !l.allow("k") {
		t.Error("burst<1 must still admit a conforming key")
	}
}

func TestLimiterSweepBoundsMemory(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(100, 1, clk.now) // idle horizon: 10ms

	// Fill well past the sweep threshold with distinct keys (principal
	// churn), advancing the clock so earlier buckets go idle.
	const keys = limiterShards*shardSweepSize + 4096
	for i := 0; i < keys; i++ {
		l.allow(fmt.Sprintf("key-%d", i))
		if i%1024 == 0 {
			clk.advance(20 * time.Millisecond)
		}
	}
	total := 0
	for i := range l.shard {
		l.shard[i].mu.Lock()
		total += len(l.shard[i].buckets)
		l.shard[i].mu.Unlock()
	}
	if total > limiterShards*shardSweepSize+limiterShards {
		t.Errorf("%d buckets retained across %d keys; the sweep is not bounding memory", total, keys)
	}
}
