// Package httpx holds the HTTP server hardening shared by everything in
// this repo that listens on an HTTP port: the oasisd observability
// endpoint and the oasisgw edge gateway. It exists because the first
// version of the obs endpoint was a bare `go http.Serve(ln, mux)` — no
// header timeout, no idle timeout, no shutdown — and a single slow
// client could pin its goroutines forever. Every HTTP listener goes
// through NewServer now, so the limits live in one place.
package httpx

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server limits applied by NewServer. An edge port faces slow-loris
// clients, stalled proxies and dead TCP peers; each limit bounds one of
// them.
const (
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request head — the classic slow-loris hold.
	ReadHeaderTimeout = 5 * time.Second
	// ReadTimeout bounds the whole request read; request bodies here are
	// small JSON documents, never uploads.
	ReadTimeout = 15 * time.Second
	// WriteTimeout bounds the response write to a stalled reader.
	WriteTimeout = 30 * time.Second
	// IdleTimeout reclaims keep-alive connections that stopped sending.
	IdleTimeout = 2 * time.Minute
	// MaxHeaderBytes caps header memory per connection.
	MaxHeaderBytes = 64 << 10
)

// NewServer wraps a handler in an http.Server with the package's
// hardening limits. The caller owns the listener and shutdown (pair it
// with Shutdown below).
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
		MaxHeaderBytes:    MaxHeaderBytes,
	}
}

// Shutdown drains srv gracefully for at most grace, then force-closes
// whatever is still connected. It always tears the server down; the
// error reports whether draining finished in time.
func Shutdown(srv *http.Server, grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		srv.Close() //nolint:errcheck // the drain already failed; this is the hammer
	}
	return err
}

// LimitListener caps the number of connections accepted concurrently —
// the accept-side admission control in front of the per-request inflight
// cap. Accept blocks while n connections are open; a closed connection
// frees its slot. (The x/net/netutil shape, rebuilt here because this
// module is stdlib-only.)
func LimitListener(ln net.Listener, n int) net.Listener {
	return &limitListener{Listener: ln, sem: make(chan struct{}, n)}
}

type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	conn, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: conn, release: func() { <-l.sem }}, nil
}

type limitConn struct {
	net.Conn
	releaseOnce sync.Once
	release     func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.releaseOnce.Do(c.release)
	return err
}
