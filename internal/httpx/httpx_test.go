package httpx

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewServerLimitsSet(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout == 0 || srv.IdleTimeout == 0 || srv.ReadTimeout == 0 ||
		srv.WriteTimeout == 0 || srv.MaxHeaderBytes == 0 {
		t.Fatalf("hardening limits missing: %+v", srv)
	}
}

// TestSlowClientDoesNotPinServer: a connection that never finishes its
// request head is cut by ReadHeaderTimeout, and Shutdown returns even
// though the slow client never went away — the regression the package
// exists to prevent.
func TestSlowClientDoesNotPinServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	go srv.Serve(ln) //nolint:errcheck // dies with the test server

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HT")); err != nil { // ...and stall
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- Shutdown(srv, 2*time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown with a stalled client: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned with a slow-loris client attached")
	}
}

// TestShutdownForcesAfterGrace: a handler that outlives the grace window
// does not wedge Shutdown — the connection is force-closed and the drain
// error reported.
func TestShutdownForcesAfterGrace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	block := make(chan struct{})
	srv := NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	}))
	defer close(block)
	go srv.Serve(ln) //nolint:errcheck // dies with the test server

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	start := time.Now()
	if err := Shutdown(srv, 100*time.Millisecond); err == nil {
		t.Error("Shutdown reported a clean drain around a wedged handler")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("forced shutdown took %v, want ~the 100ms grace", elapsed)
	}
}

// TestLimitListenerCapsConcurrentConns: with a cap of 2, a third
// connection is not accepted until one of the first two closes.
func TestLimitListenerCapsConcurrentConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 2)
	defer ln.Close()

	var accepted atomic.Int64
	var mu sync.Mutex
	var open []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			mu.Lock()
			open = append(open, c)
			mu.Unlock()
		}
	}()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2, c3 := dial(), dial(), dial()
	defer c1.Close()
	defer c2.Close()
	defer c3.Close()

	waitFor := func(n int64) bool {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if accepted.Load() == n {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return accepted.Load() == n
	}
	if !waitFor(2) {
		t.Fatalf("accepted %d connections, want the cap of 2", accepted.Load())
	}
	time.Sleep(50 * time.Millisecond) // give a leak the chance to surface
	if got := accepted.Load(); got != 2 {
		t.Fatalf("accepted %d connections past the cap", got)
	}

	// Release one slot; the third connection must now come through.
	mu.Lock()
	open[0].Close()
	mu.Unlock()
	if !waitFor(3) {
		t.Fatalf("accepted %d connections after freeing a slot, want 3", accepted.Load())
	}
}

// TestLimitListenerDoubleCloseFreesOneSlot: closing a conn twice must
// not release two slots.
func TestLimitListenerDoubleCloseFreesOneSlot(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := LimitListener(inner, 1).(*limitListener)
	defer ln.Close()

	go func() {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	conn.Close()
	if got := len(ln.sem); got != 0 {
		t.Fatalf("sem holds %d tokens after double close, want 0", got)
	}
}
