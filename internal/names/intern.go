package names

import (
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"
)

// Term interning.
//
// A service holding millions of credential records stores millions of
// parameter terms and role-name components, and in a deployment those
// strings arrive from the wire: every decoded request allocates fresh
// copies of vocabulary that is overwhelmingly shared (service names, role
// names, hospital/ward/department atoms — the parameterized-RBAC argument
// for OASIS roles is precisely that the parameter vocabulary is small
// relative to the principal population). Interning folds all of those
// copies into one canonical table so equal terms share storage: an
// interned string is a pointer into the table, two interned equal strings
// have the same data pointer, and Go's string comparison short-circuits
// on pointer equality, so interned terms also compare at pointer speed.
//
// Interning also detaches retained strings from transient decode buffers
// (the canonical copy is cloned on first sight), so a resident record
// never pins the multi-kilobyte wire frame its key arrived in.
//
// The table is append-only and sharded 64 ways; the read path is one
// hash plus a shard RLock. Interning is on by default; the E16 capacity
// harness switches it off to measure the pre-interning baseline.

const internShards = 64

// internMaxEntries caps the canonical table (~4M entries). Interning
// targets shared vocabulary — role names, parameter atoms, revocation
// reasons — whose cardinality is tiny relative to the principal
// population; the cap means an adversarial or degenerate stream of
// unique strings degrades interning to a no-op instead of growing the
// table without bound. At the cap, InternString returns its argument
// unchanged (already-canonical strings still resolve).
const internMaxEntries = 1 << 22

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var (
	internSeed  = maphash.MakeSeed()
	internTable [internShards]internShard

	// interningOn gates InternString. Default on; SetInterning(false) is
	// for harnesses and tests measuring the uninterned baseline.
	interningOn atomic.Bool

	// internCount / internBytes track table size for the obs gauges and
	// the capacity report.
	internCount atomic.Int64
	internBytes atomic.Int64
)

func init() { interningOn.Store(true) }

// SetInterning switches term interning on or off globally. It exists for
// the capacity harness (E16), which measures resident memory with and
// without interning in the same process; production code never calls it.
// Toggling is safe at any time — interning only affects which backing
// array equal strings share, never their values.
func SetInterning(on bool) { interningOn.Store(on) }

// InterningEnabled reports whether InternString canonicalises.
func InterningEnabled() bool { return interningOn.Load() }

// InternStats reports the intern table's entry count and retained bytes
// (string contents only, excluding map overhead).
func InternStats() (entries int64, bytes int64) {
	return internCount.Load(), internBytes.Load()
}

// InternString returns the canonical copy of s, inserting it on first
// sight. The canonical copy is cloned, so interning a substring of a
// large decode buffer retains only the substring's bytes.
func InternString(s string) string {
	if s == "" || !interningOn.Load() {
		return s
	}
	sh := &internTable[maphash.String(internSeed, s)%internShards]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	if internCount.Load() >= internMaxEntries {
		return s
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		c = strings.Clone(s)
		if sh.m == nil {
			sh.m = make(map[string]string)
		}
		sh.m[c] = c
		internCount.Add(1)
		internBytes.Add(int64(len(c)))
	}
	sh.mu.Unlock()
	return c
}

// Intern returns t with its symbol canonicalised. Integer terms pass
// through unchanged; variable, atom and string terms share their Sym with
// every other interned term spelling the same symbol.
func (t Term) Intern() Term {
	if t.Sym != "" {
		t.Sym = InternString(t.Sym)
	}
	return t
}

// InternTerms canonicalises a tuple in place and returns it.
func InternTerms(ts []Term) []Term {
	for i := range ts {
		ts[i] = ts[i].Intern()
	}
	return ts
}

// Intern returns the role name with both components canonicalised.
func (r RoleName) Intern() RoleName {
	r.Service = InternString(r.Service)
	r.Name = InternString(r.Name)
	return r
}

// Intern canonicalises the role's name and parameters. The parameter
// slice is rewritten in place (constructors copy parameters, so a role
// reaching storage owns its slice).
func (r Role) Intern() Role {
	r.Name = r.Name.Intern()
	InternTerms(r.Params)
	return r
}
