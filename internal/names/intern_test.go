package names

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"unsafe"
)

// data returns the string's backing-array pointer: two interned equal
// strings must share it.
func data(s string) *byte { return unsafe.StringData(s) }

func TestInternStringCanonical(t *testing.T) {
	a := InternString("ward_" + fmt.Sprint(3))
	b := InternString(string([]byte("ward_3"))) // force a distinct allocation
	if a != b {
		t.Fatalf("interned strings unequal: %q vs %q", a, b)
	}
	if data(a) != data(b) {
		t.Fatalf("interned equal strings do not share storage")
	}
}

func TestInternStringClonesSubstrings(t *testing.T) {
	// Interning a substring of a large buffer must not retain the buffer.
	big := make([]byte, 1<<16)
	copy(big, "substr_payload_xyz")
	sub := string(big[:18])
	c := InternString(sub)
	if c != "substr_payload_xyz" {
		t.Fatalf("canonical copy corrupted: %q", c)
	}
	if data(c) == data(sub) && unsafe.StringData(sub) == &big[0] {
		t.Fatalf("canonical copy aliases the source buffer")
	}
}

func TestSetInterningOff(t *testing.T) {
	SetInterning(false)
	defer SetInterning(true)
	s := string([]byte("off_mode_probe"))
	if got := InternString(s); data(got) != data(s) {
		t.Fatalf("InternString canonicalised while disabled")
	}
	if InterningEnabled() {
		t.Fatalf("InterningEnabled() = true after SetInterning(false)")
	}
}

// randTerm builds a random term from a small vocabulary so collisions are
// frequent (the interesting case for interning).
func randTerm(rng *rand.Rand) Term {
	switch rng.Intn(4) {
	case 0:
		return Var(fmt.Sprintf("V%d", rng.Intn(8)))
	case 1:
		return Atom(fmt.Sprintf("atom_%d", rng.Intn(16)))
	case 2:
		return Str(fmt.Sprintf("str %d", rng.Intn(16)))
	default:
		return Int(int64(rng.Intn(1000) - 500))
	}
}

// TestInternedTermsBehaveIdentically is the property test: for random
// terms, the interned form is structurally equal to the original, renders
// identically, JSON round-trips to the same value, and unifies exactly as
// the uninterned form does.
func TestInternedTermsBehaveIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 2000; i++ {
		orig := randTerm(rng)
		in := orig.Intern()
		if !in.Equal(orig) {
			t.Fatalf("interned term %v != original %v", in, orig)
		}
		if in.String() != orig.String() {
			t.Fatalf("interned render %q != %q", in.String(), orig.String())
		}
		bi, err1 := json.Marshal(in)
		bo, err2 := json.Marshal(orig)
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if string(bi) != string(bo) {
			t.Fatalf("interned JSON %s != uninterned %s", bi, bo)
		}
		var back Term
		if err := json.Unmarshal(bi, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !back.Equal(orig) {
			t.Fatalf("JSON round-trip of interned term: got %v want %v", back, orig)
		}

		// Unification must be indifferent to interning.
		other := randTerm(rng)
		s1, s2 := NewSubstitution(), NewSubstitution()
		ok1 := Unify(orig, other, s1)
		ok2 := Unify(in, other.Intern(), s2)
		if ok1 != ok2 {
			t.Fatalf("Unify(%v, %v): uninterned %v, interned %v", orig, other, ok1, ok2)
		}
	}
}

func TestInternRoleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		n := MustRoleName(fmt.Sprintf("svc%d", rng.Intn(4)), fmt.Sprintf("role%d", rng.Intn(4)), 2)
		orig, err := NewRole(n, randTerm(rng), randTerm(rng))
		if err != nil {
			t.Fatalf("NewRole: %v", err)
		}
		in := orig.Intern()
		if !in.Equal(orig) {
			t.Fatalf("interned role %v != original %v", in, orig)
		}
		if in.Key() != orig.Key() {
			t.Fatalf("interned key %q != %q", in.Key(), orig.Key())
		}
		bi, _ := json.Marshal(in)
		bo, _ := json.Marshal(orig)
		if string(bi) != string(bo) {
			t.Fatalf("interned role JSON %s != %s", bi, bo)
		}
		// Equal role names interned twice share storage.
		again := MustRoleName(n.Service, n.Name, n.Arity).Intern()
		if data(again.Service) != data(in.Name.Service) || data(again.Name) != data(in.Name.Name) {
			t.Fatalf("re-interned role name does not share storage")
		}
	}
}

// TestInternHammer drives the intern table from many goroutines over an
// overlapping vocabulary; run with -race. Afterwards every spelling must
// map to a single canonical pointer.
func TestInternHammer(t *testing.T) {
	const goroutines = 16
	const vocab = 64
	var wg sync.WaitGroup
	got := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			out := make([]string, vocab)
			for i := 0; i < 20000; i++ {
				k := rng.Intn(vocab)
				s := InternString(fmt.Sprintf("hammer_%d", k))
				out[k] = s
				if i%97 == 0 {
					InternTerms([]Term{Atom(s), Str(s), Int(int64(k))})
				}
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for k := 0; k < vocab; k++ {
		var canon *byte
		for g := 0; g < goroutines; g++ {
			if got[g][k] == "" {
				continue
			}
			p := data(got[g][k])
			if canon == nil {
				canon = p
			} else if p != canon {
				t.Fatalf("vocab %d: two canonical pointers observed", k)
			}
		}
	}
	entries, bytes := InternStats()
	if entries <= 0 || bytes <= 0 {
		t.Fatalf("InternStats() = %d, %d; want positive", entries, bytes)
	}
}

func BenchmarkInternStringHit(b *testing.B) {
	s := InternString("bench_hit_key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if InternString(s) != s {
			b.Fatal("mismatch")
		}
	}
}
