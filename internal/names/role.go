package names

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Errors returned by role name parsing.
var (
	ErrBadRoleName = errors.New("malformed role name")
	ErrArity       = errors.New("wrong number of parameters for role")
)

// RoleName identifies a role within the service that defines it. OASIS has
// no global role namespace (Sect. 1): Service is the defining service's
// name and Name is local to it. Arity is the declared parameter count.
type RoleName struct {
	Service string `json:"service"`
	Name    string `json:"name"`
	Arity   int    `json:"arity"`
}

// NewRoleName constructs a RoleName after validating its components.
func NewRoleName(service, name string, arity int) (RoleName, error) {
	if service == "" || name == "" || arity < 0 {
		return RoleName{}, fmt.Errorf("%w: service=%q name=%q arity=%d",
			ErrBadRoleName, service, name, arity)
	}
	if strings.ContainsAny(service, "./(), \t\n") || strings.ContainsAny(name, "./(), \t\n") {
		return RoleName{}, fmt.Errorf("%w: illegal character in %q.%q", ErrBadRoleName, service, name)
	}
	return RoleName{Service: service, Name: name, Arity: arity}, nil
}

// MustRoleName is NewRoleName that panics on error; intended for package
// initialisation of test fixtures and examples.
func MustRoleName(service, name string, arity int) RoleName {
	rn, err := NewRoleName(service, name, arity)
	if err != nil {
		panic(err)
	}
	return rn
}

// String renders the qualified name as service.name/arity.
func (r RoleName) String() string {
	return fmt.Sprintf("%s.%s/%d", r.Service, r.Name, r.Arity)
}

// ParseRoleName parses the service.name/arity form produced by String.
func ParseRoleName(s string) (RoleName, error) {
	dot := strings.IndexByte(s, '.')
	slash := strings.LastIndexByte(s, '/')
	if dot <= 0 || slash <= dot+1 || slash == len(s)-1 {
		return RoleName{}, fmt.Errorf("%w: %q", ErrBadRoleName, s)
	}
	var arity int
	if _, err := fmt.Sscanf(s[slash+1:], "%d", &arity); err != nil {
		return RoleName{}, fmt.Errorf("%w: bad arity in %q", ErrBadRoleName, s)
	}
	return NewRoleName(s[:dot], s[dot+1:slash], arity)
}

// Role is an instance of a role name applied to parameter terms, e.g.
// treating_doctor(d17, p42). Params may contain variables inside policy
// rules; a role held by a principal is always ground.
type Role struct {
	Name   RoleName `json:"name"`
	Params []Term   `json:"params,omitempty"`
}

// NewRole pairs a role name with parameters, enforcing arity.
func NewRole(name RoleName, params ...Term) (Role, error) {
	if len(params) != name.Arity {
		return Role{}, fmt.Errorf("%w: %s given %d", ErrArity, name, len(params))
	}
	cp := make([]Term, len(params))
	copy(cp, params)
	return Role{Name: name, Params: cp}, nil
}

// MustRole is NewRole that panics on error.
func MustRole(name RoleName, params ...Term) Role {
	r, err := NewRole(name, params...)
	if err != nil {
		panic(err)
	}
	return r
}

// IsGround reports whether all parameters are ground.
func (r Role) IsGround() bool {
	for _, p := range r.Params {
		if !p.IsGround() {
			return false
		}
	}
	return true
}

// Equal reports structural equality of two roles.
func (r Role) Equal(g Role) bool {
	if r.Name != g.Name || len(r.Params) != len(g.Params) {
		return false
	}
	for i := range r.Params {
		if r.Params[i] != g.Params[i] {
			return false
		}
	}
	return true
}

// Apply returns a copy of r with the substitution applied to its parameters.
func (r Role) Apply(s Substitution) Role {
	return Role{Name: r.Name, Params: s.ApplyAll(r.Params)}
}

// Unify unifies the parameters of r against those of ground role g under s.
// Role names must match exactly (same defining service, name, and arity).
func (r Role) Unify(g Role, s Substitution) (Substitution, bool) {
	if r.Name != g.Name {
		return s, false
	}
	return UnifyTuples(r.Params, g.Params, s)
}

// String renders the role instance in policy syntax. Built in a single
// buffer rather than Sprintf+Join: Key (below) is computed on every
// activation and credential-set construction, so this sits on the hot
// path for million-principal login storms.
func (r Role) String() string {
	var b strings.Builder
	b.Grow(len(r.Name.Service) + 1 + len(r.Name.Name) + 2 + 18*len(r.Params))
	b.WriteString(r.Name.Service)
	b.WriteByte('.')
	b.WriteString(r.Name.Name)
	if len(r.Params) > 0 {
		b.WriteByte('(')
		for i, p := range r.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			switch p.Kind {
			case KindVar, KindAtom:
				b.WriteString(p.Sym)
			case KindString:
				b.WriteString(strconv.Quote(p.Sym))
			case KindInt:
				var tmp [20]byte
				b.Write(strconv.AppendInt(tmp[:0], p.Num, 10))
			default:
				b.WriteString("<invalid>")
			}
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Key returns a canonical map key for a ground role instance.
func (r Role) Key() string { return r.String() }
