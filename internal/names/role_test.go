package names

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRoleNameValidation(t *testing.T) {
	tests := []struct {
		name        string
		service, rn string
		arity       int
		wantErr     bool
	}{
		{"valid", "hospital", "treating_doctor", 2, false},
		{"valid zero arity", "login", "logged_in_user", 0, false},
		{"empty service", "", "r", 0, true},
		{"empty name", "s", "", 0, true},
		{"negative arity", "s", "r", -1, true},
		{"dot in service", "a.b", "r", 0, true},
		{"paren in name", "s", "r(x)", 0, true},
		{"space in name", "s", "r x", 0, true},
		{"slash in name", "s", "r/2", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewRoleName(tt.service, tt.rn, tt.arity)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRoleNameRoundTrip(t *testing.T) {
	rn := MustRoleName("hospital", "treating_doctor", 2)
	s := rn.String()
	if s != "hospital.treating_doctor/2" {
		t.Fatalf("String = %q", s)
	}
	back, err := ParseRoleName(s)
	if err != nil {
		t.Fatalf("ParseRoleName: %v", err)
	}
	if back != rn {
		t.Errorf("round trip: got %v want %v", back, rn)
	}
}

func TestParseRoleNameErrors(t *testing.T) {
	for _, bad := range []string{"", "noslash", "a.b/", ".b/2", "a./2", "a/2", "a.b/x"} {
		if _, err := ParseRoleName(bad); err == nil {
			t.Errorf("ParseRoleName(%q) succeeded, want error", bad)
		}
	}
}

func TestMustRoleNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRoleName did not panic on invalid input")
		}
	}()
	MustRoleName("", "", 0)
}

func TestNewRoleArity(t *testing.T) {
	rn := MustRoleName("h", "doc", 2)
	if _, err := NewRole(rn, Atom("d1")); err == nil {
		t.Error("arity mismatch accepted")
	}
	r, err := NewRole(rn, Atom("d1"), Atom("p1"))
	if err != nil {
		t.Fatalf("NewRole: %v", err)
	}
	if !r.IsGround() {
		t.Error("ground role reported non-ground")
	}
}

func TestNewRoleCopiesParams(t *testing.T) {
	rn := MustRoleName("h", "doc", 1)
	params := []Term{Atom("d1")}
	r, err := NewRole(rn, params...)
	if err != nil {
		t.Fatal(err)
	}
	params[0] = Atom("mutated")
	if r.Params[0] != Atom("d1") {
		t.Error("NewRole aliased caller slice")
	}
}

func TestRoleUnify(t *testing.T) {
	rn := MustRoleName("h", "doc", 2)
	pattern := MustRole(rn, Var("D"), Var("P"))
	ground := MustRole(rn, Atom("d9"), Int(42))
	s, ok := pattern.Unify(ground, NewSubstitution())
	if !ok {
		t.Fatal("unification failed")
	}
	if got := s.Apply(Var("D")); got != Atom("d9") {
		t.Errorf("D = %v", got)
	}
	if got := s.Apply(Var("P")); got != Int(42) {
		t.Errorf("P = %v", got)
	}
}

func TestRoleUnifyNameMismatch(t *testing.T) {
	a := MustRole(MustRoleName("h", "doc", 0))
	b := MustRole(MustRoleName("clinic", "doc", 0))
	if _, ok := a.Unify(b, NewSubstitution()); ok {
		t.Error("roles from different services unified")
	}
}

func TestRoleApplyAndString(t *testing.T) {
	rn := MustRoleName("h", "doc", 2)
	r := MustRole(rn, Var("D"), Str("p 1"))
	s := Substitution{"D": Atom("d3")}
	applied := r.Apply(s)
	if !applied.IsGround() {
		t.Error("applied role should be ground")
	}
	want := `h.doc(d3, "p 1")`
	if applied.String() != want {
		t.Errorf("String = %q want %q", applied.String(), want)
	}
	zero := MustRole(MustRoleName("login", "user", 0))
	if zero.String() != "login.user" {
		t.Errorf("zero-arity String = %q", zero.String())
	}
}

// Property: every valid role name round-trips through String/Parse.
func TestQuickRoleNameRoundTrip(t *testing.T) {
	f := func(svcIdx, nameIdx, arity uint8) bool {
		services := []string{"a", "hospital", "national_ehr", "x1"}
		rolenames := []string{"r", "treating_doctor", "logged_in_user"}
		rn := MustRoleName(services[int(svcIdx)%len(services)],
			rolenames[int(nameIdx)%len(rolenames)], int(arity%16))
		back, err := ParseRoleName(rn.String())
		return err == nil && back == rn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoleKeyDistinguishesParams(t *testing.T) {
	rn := MustRoleName("h", "doc", 1)
	a := MustRole(rn, Atom("x")).Key()
	b := MustRole(rn, Atom("y")).Key()
	if a == b {
		t.Error("keys for different parameters collide")
	}
	if !strings.Contains(a, "h.doc") {
		t.Errorf("key %q missing qualified name", a)
	}
}
