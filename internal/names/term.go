// Package names implements the parametrised naming layer of OASIS: role
// names qualified by their defining service, typed parameter terms, and
// first-order unification over them.
//
// OASIS roles are service-specific and parametrised (Sect. 2 of the paper):
// a role such as treating_doctor(doctor_id, patient_id) is a role name owned
// by one service, applied to a tuple of parameter terms. Role activation
// rules are Horn clauses whose body predicates mention variables; matching a
// presented credential against a rule condition is term unification.
package names

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TermKind discriminates the variants of Term.
type TermKind int

// Term kinds. Variables unify with anything; atoms, strings and integers
// unify only with equal values of the same kind.
const (
	KindVar TermKind = iota + 1
	KindAtom
	KindString
	KindInt
)

// String returns a diagnostic name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindVar:
		return "var"
	case KindAtom:
		return "atom"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	default:
		return "invalid"
	}
}

// Term is a first-order term without function symbols: a variable, an atom
// (lower-case symbolic constant), a quoted string, or an integer. The zero
// value is invalid; construct terms with Var, Atom, Str or Int.
type Term struct {
	Kind TermKind `json:"kind"`
	// Sym holds the variable name (KindVar), atom text (KindAtom) or
	// string contents (KindString).
	Sym string `json:"sym,omitempty"`
	// Num holds the value for KindInt.
	Num int64 `json:"num,omitempty"`
}

// Var returns a variable term. By convention variable names start with an
// upper-case letter or underscore, matching the policy language syntax.
func Var(name string) Term { return Term{Kind: KindVar, Sym: name} }

// Atom returns a symbolic constant term.
func Atom(sym string) Term { return Term{Kind: KindAtom, Sym: sym} }

// Str returns a string constant term.
func Str(s string) Term { return Term{Kind: KindString, Sym: s} }

// Int returns an integer constant term.
func Int(n int64) Term { return Term{Kind: KindInt, Num: n} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsGround reports whether t contains no variables (terms are flat, so this
// is simply "not a variable").
func (t Term) IsGround() bool { return t.Kind != KindVar && t.Kind != 0 }

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool { return t == u }

// String renders the term in policy-language syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindVar:
		return t.Sym
	case KindAtom:
		return t.Sym
	case KindString:
		return strconv.Quote(t.Sym)
	case KindInt:
		return strconv.FormatInt(t.Num, 10)
	default:
		return "<invalid>"
	}
}

// Substitution maps variable names to ground or variable terms.
type Substitution map[string]Term

// NewSubstitution returns an empty substitution.
func NewSubstitution() Substitution { return make(Substitution) }

// Clone returns an independent copy of s.
func (s Substitution) Clone() Substitution {
	c := make(Substitution, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Apply resolves t under s, following variable bindings until a non-variable
// or unbound variable is reached. Binding chains are short (no function
// symbols) but may pass through several variables.
func (s Substitution) Apply(t Term) Term {
	for t.IsVar() {
		bound, ok := s[t.Sym]
		if !ok || bound == t {
			return t
		}
		t = bound
	}
	return t
}

// ApplyAll maps Apply over a tuple.
func (s Substitution) ApplyAll(ts []Term) []Term {
	if ts == nil {
		return nil
	}
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = s.Apply(t)
	}
	return out
}

// Bind adds the binding name→t, returning false if name is already bound to
// a different term (after resolution).
func (s Substitution) Bind(name string, t Term) bool {
	existing, ok := s[name]
	if !ok {
		s[name] = t
		return true
	}
	return s.Apply(existing).Equal(s.Apply(t))
}

// String renders the substitution deterministically (sorted by variable).
func (s Substitution) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, s[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Unify attempts to unify a and b under the existing substitution s,
// extending s in place. It reports whether unification succeeded; on
// failure s may contain partial bindings, so callers that need rollback
// should Clone first (UnifyTuples does this for its callers).
func Unify(a, b Term, s Substitution) bool {
	a = s.Apply(a)
	b = s.Apply(b)
	switch {
	case a.IsVar() && b.IsVar():
		if a.Sym == b.Sym {
			return true
		}
		s[a.Sym] = b
		return true
	case a.IsVar():
		s[a.Sym] = b
		return true
	case b.IsVar():
		s[b.Sym] = a
		return true
	default:
		return a.Equal(b)
	}
}

// UnifyTuples unifies two equal-length tuples under s, returning the
// extended substitution and true on success. s itself is never mutated; on
// failure the original s remains valid. Empty tuples (parameterless
// roles, argument-free rules) unify without cloning — there is nothing
// to bind, and every mutation path in this package clones first, so
// handing back s unchanged is safe and keeps the rule-evaluation hot
// path from allocating a map per condition.
func UnifyTuples(as, bs []Term, s Substitution) (Substitution, bool) {
	if len(as) != len(bs) {
		return s, false
	}
	if len(as) == 0 {
		return s, true
	}
	out := s.Clone()
	for i := range as {
		if !Unify(as[i], bs[i], out) {
			return s, false
		}
	}
	return out, true
}
