package names

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name   string
		term   Term
		kind   TermKind
		ground bool
		str    string
	}{
		{"var", Var("X"), KindVar, false, "X"},
		{"atom", Atom("alice"), KindAtom, true, "alice"},
		{"string", Str("ward 3"), KindString, true, `"ward 3"`},
		{"int", Int(42), KindInt, true, "42"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.term.Kind != tt.kind {
				t.Errorf("Kind = %v, want %v", tt.term.Kind, tt.kind)
			}
			if tt.term.IsGround() != tt.ground {
				t.Errorf("IsGround = %v, want %v", tt.term.IsGround(), tt.ground)
			}
			if got := tt.term.String(); got != tt.str {
				t.Errorf("String = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestZeroTermInvalid(t *testing.T) {
	var z Term
	if z.IsGround() {
		t.Error("zero Term must not be ground")
	}
	if z.String() != "<invalid>" {
		t.Errorf("zero Term String = %q", z.String())
	}
	if z.Kind.String() != "invalid" {
		t.Errorf("zero Kind String = %q", z.Kind.String())
	}
}

func TestUnifyGround(t *testing.T) {
	tests := []struct {
		name string
		a, b Term
		ok   bool
	}{
		{"equal atoms", Atom("a"), Atom("a"), true},
		{"different atoms", Atom("a"), Atom("b"), false},
		{"equal ints", Int(7), Int(7), true},
		{"different ints", Int(7), Int(8), false},
		{"atom vs string same text", Atom("a"), Str("a"), false},
		{"atom vs int", Atom("7"), Int(7), false},
		{"equal strings", Str("x"), Str("x"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSubstitution()
			if got := Unify(tt.a, tt.b, s); got != tt.ok {
				t.Errorf("Unify(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.ok)
			}
		})
	}
}

func TestUnifyVarBinding(t *testing.T) {
	s := NewSubstitution()
	if !Unify(Var("X"), Atom("alice"), s) {
		t.Fatal("var should unify with atom")
	}
	if got := s.Apply(Var("X")); !got.Equal(Atom("alice")) {
		t.Errorf("X resolved to %v", got)
	}
	// Rebinding to the same value succeeds; to a different value fails.
	if !Unify(Var("X"), Atom("alice"), s) {
		t.Error("re-unifying with same value must succeed")
	}
	if Unify(Var("X"), Atom("bob"), s) {
		t.Error("unifying bound var with different value must fail")
	}
}

func TestUnifyVarVarChain(t *testing.T) {
	s := NewSubstitution()
	if !Unify(Var("X"), Var("Y"), s) {
		t.Fatal("var-var unification failed")
	}
	if !Unify(Var("Y"), Int(9), s) {
		t.Fatal("binding Y failed")
	}
	if got := s.Apply(Var("X")); !got.Equal(Int(9)) {
		t.Errorf("X resolved to %v through chain, want 9", got)
	}
	// Self-unification is a no-op.
	if !Unify(Var("Z"), Var("Z"), s) {
		t.Error("self unification must succeed")
	}
}

func TestUnifyTuplesRollback(t *testing.T) {
	s := NewSubstitution()
	s["W"] = Atom("kept")
	// Second element clashes, so the whole tuple fails and s is untouched.
	_, ok := UnifyTuples(
		[]Term{Var("X"), Atom("a")},
		[]Term{Atom("v"), Atom("b")},
		s,
	)
	if ok {
		t.Fatal("tuple unification should fail")
	}
	if len(s) != 1 || s["W"] != Atom("kept") {
		t.Errorf("failed unification mutated caller substitution: %v", s)
	}
	if _, bound := s["X"]; bound {
		t.Error("partial binding leaked into caller substitution")
	}
}

func TestUnifyTuplesLengthMismatch(t *testing.T) {
	if _, ok := UnifyTuples([]Term{Atom("a")}, nil, NewSubstitution()); ok {
		t.Error("length mismatch must fail")
	}
}

func TestSubstitutionCloneIndependent(t *testing.T) {
	s := NewSubstitution()
	s["X"] = Int(1)
	c := s.Clone()
	c["Y"] = Int(2)
	if _, ok := s["Y"]; ok {
		t.Error("Clone is not independent")
	}
}

func TestSubstitutionString(t *testing.T) {
	s := Substitution{"B": Int(2), "A": Int(1)}
	if got := s.String(); got != "{A=1, B=2}" {
		t.Errorf("String = %q", got)
	}
}

func TestSubstitutionBind(t *testing.T) {
	s := NewSubstitution()
	if !s.Bind("X", Atom("a")) {
		t.Fatal("first Bind failed")
	}
	if !s.Bind("X", Atom("a")) {
		t.Error("idempotent Bind failed")
	}
	if s.Bind("X", Atom("b")) {
		t.Error("conflicting Bind succeeded")
	}
}

func TestApplyAllNil(t *testing.T) {
	s := NewSubstitution()
	if s.ApplyAll(nil) != nil {
		t.Error("ApplyAll(nil) should be nil")
	}
}

// genTerm derives a ground term from fuzz inputs.
func genTerm(sel uint8, sym string, num int64) Term {
	switch sel % 3 {
	case 0:
		return Atom("a" + sym)
	case 1:
		return Str(sym)
	default:
		return Int(num)
	}
}

// Property: a successful unifier makes both tuples syntactically equal
// after application (I6).
func TestQuickUnifierMakesEqual(t *testing.T) {
	f := func(sels []uint8, syms []string, nums []int64, varMask uint16) bool {
		n := len(sels)
		if len(syms) < n {
			n = len(syms)
		}
		if len(nums) < n {
			n = len(nums)
		}
		if n > 8 {
			n = 8
		}
		ground := make([]Term, n)
		pattern := make([]Term, n)
		for i := 0; i < n; i++ {
			ground[i] = genTerm(sels[i], syms[i], nums[i])
			if varMask&(1<<uint(i)) != 0 {
				pattern[i] = Var("V" + string(rune('A'+i)))
			} else {
				pattern[i] = ground[i]
			}
		}
		s, ok := UnifyTuples(pattern, ground, NewSubstitution())
		if !ok {
			return false
		}
		ap := s.ApplyAll(pattern)
		ag := s.ApplyAll(ground)
		for i := 0; i < n; i++ {
			if !ap[i].Equal(ag[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Apply is idempotent once a term is resolved.
func TestQuickApplyIdempotent(t *testing.T) {
	f := func(sel uint8, sym string, num int64) bool {
		s := NewSubstitution()
		s["X"] = genTerm(sel, sym, num)
		once := s.Apply(Var("X"))
		twice := s.Apply(once)
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
