package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler exposes a registry and tracer over HTTP:
//
//	/metrics        plaintext metric exposition (prometheus text style)
//	/trace          the retained trace ring as JSON (?n=LIMIT keeps the
//	                newest LIMIT events)
//	/debug/pprof/*  the standard net/http/pprof profiles
//
// cmd/oasisd mounts it under the -obs-addr listener; anything that can
// speak HTTP (curl, a scraper, go tool pprof) can read it.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "oasis observability endpoints:\n  /metrics\n  /trace?n=100\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if n := r.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			limit = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := tr.WriteJSON(w, limit); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
