package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesMetricsTraceAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Add(3)
	tr := NewTracer(16)
	tr.Record(TraceEvent{Kind: "activate", Service: "login", Subject: "alice", Outcome: "ok"})
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //nolint:errcheck
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/trace?n=10")
	if code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	var dump struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Kind    string `json:"kind"`
			Subject string `json:"subject"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if dump.Total != 1 || len(dump.Events) != 1 || dump.Events[0].Subject != "alice" {
		t.Errorf("/trace dump = %+v", dump)
	}
	if code, _ := get("/trace?n=bogus"); code != 400 {
		t.Errorf("/trace?n=bogus = %d, want 400", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}
}
