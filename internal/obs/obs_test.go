package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	r.Func("derived", func() uint64 { return 42 })
	if got := r.Value("derived"); got != 42 {
		t.Errorf("func metric = %d, want 42", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("missing metric = %d, want 0", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	g := r.Gauge("y")
	g.Set(3)
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveSince(time.Now())
	r.Func("f", func() uint64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil handles retained state")
	}
	var tr *Tracer
	tr.Record(TraceEvent{Kind: "x"})
	if tr.Snapshot() != nil || tr.Total() != 0 {
		t.Error("nil tracer retained state")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 99, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 5665 {
		t.Errorf("sum = %d, want 5665", got)
	}
	// p50 of 7 observations: rank 3.5 lands in the (10,100] bucket.
	if q := h.Quantile(0.5); q <= 10 || q > 100 {
		t.Errorf("p50 = %d, want in (10,100]", q)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_ns_bucket{le="10"} 3`,
		`lat_ns_bucket{le="100"} 5`,
		`lat_ns_bucket{le="1000"} 6`,
		`lat_ns_bucket{le="+Inf"} 7`,
		"lat_ns_sum 5665",
		"lat_ns_count 7",
		"lat_ns_p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledHistogramTextSplicesLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`rpc_call_ns{service="login",method="validate_rmc"}`, []int64{100})
	h.Observe(50)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rpc_call_ns_bucket{service="login",method="validate_rmc",le="100"} 1`,
		`rpc_call_ns_count{service="login",method="validate_rmc"} 1`,
		`rpc_call_ns_sum{service="login",method="validate_rmc"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextScalarLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.Func("c", func() uint64 { return 9 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a_total 3\n", "b -2\n", "c 9\n"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteText missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTracerOrderAndWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Record(TraceEvent{Kind: "k", Depth: i})
	}
	if got := tr.Total(); got != 20 {
		t.Errorf("total = %d, want 20", got)
	}
	events := tr.Snapshot()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	// The newest 8 of 20 survive.
	if events[len(events)-1].Depth != 19 || events[0].Depth != 12 {
		t.Errorf("retained window = depths [%d..%d], want [12..19]",
			events[0].Depth, events[len(events)-1].Depth)
	}
}

func TestTracerEchoFiltersKinds(t *testing.T) {
	tr := NewTracer(16)
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	tr.Echo(w, "liveness")
	tr.Record(TraceEvent{Kind: "validate", Subject: "noisy"})
	tr.Record(TraceEvent{Kind: "liveness", Subject: "cr-1", Outcome: "dead"})
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	if strings.Contains(out, "noisy") {
		t.Error("echo leaked a filtered kind")
	}
	if !strings.Contains(out, "liveness") || !strings.Contains(out, "cr-1") {
		t.Errorf("echo missing liveness line: %q", out)
	}
	tr.Echo(nil)
	tr.Record(TraceEvent{Kind: "liveness", Subject: "cr-2"})
	mu.Lock()
	defer mu.Unlock()
	if strings.Contains(sb.String(), "cr-2") {
		t.Error("echo still active after disable")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestWriteJSONLimit(t *testing.T) {
	tr := NewTracer(32)
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Kind: "k"})
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"total": 10`) || !strings.Contains(out, `"retained": 3`) {
		t.Errorf("WriteJSON = %s", out)
	}
}

// TestConcurrentRegistryAndTracer hammers every mutation path from
// parallel writers while readers snapshot continuously; run under -race
// (the CI race job covers internal/obs) this pins the layer's
// thread-safety contract.
func TestConcurrentRegistryAndTracer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(256)
	const writers = 8
	const perWriter = 2000

	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = tr.Snapshot()
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(worker int) {
			defer writersWG.Done()
			c := r.Counter("ops_total")
			g := r.Gauge("inflight")
			h := r.Histogram("lat_ns", nil)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				tr.Record(TraceEvent{Kind: "op", Depth: worker})
				g.Add(-1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stopReaders)
	readers.Wait()

	if got := r.Counter("ops_total").Value(); got != writers*perWriter {
		t.Errorf("ops_total = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("lat_ns", nil).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
	if got := tr.Total(); got != writers*perWriter {
		t.Errorf("trace total = %d, want %d", got, writers*perWriter)
	}
}
