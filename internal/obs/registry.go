// Package obs is the observability layer of the OASIS reproduction: a
// dependency-free metrics registry (atomic counters, gauges, read-only
// function metrics and fixed-bucket latency histograms) plus a structured
// trace recorder (trace.go) and a plaintext HTTP exposition surface
// (http.go) mounted by cmd/oasisd under -obs-addr.
//
// Everything here is designed for the engine's hot paths: handles are
// resolved once at setup time, every mutation is a handful of atomic
// operations, and all types are nil-safe so instrumented code needs no
// "is observability enabled?" branches — a nil *Registry hands out nil
// handles whose methods are no-ops.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter discards
// all updates, so code instrumented against a disabled registry pays one
// predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram upper bounds used when none are given:
// 24 exponential buckets from 250ns to ~2s, matching the dynamic range of
// the engine's operations (sub-µs cache hits up to multi-second degraded
// RPC timelines).
func DefaultBuckets() []int64 {
	bounds := make([]int64, 24)
	b := int64(250)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket distribution of int64 observations
// (latencies in nanoseconds by convention, but any magnitude works — the
// revocation-cascade depth histogram uses small integers). Observations
// land in the first bucket whose upper bound is >= the value; values above
// every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search over the (typically ~24-entry) bound slice: the
	// slice is immutable after construction, so this path is lock-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed wall time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the winning bucket. It returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	lower := int64(0)
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		upper := int64(0)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		} else {
			// +Inf bucket: report the largest finite bound.
			upper = h.bounds[len(h.bounds)-1]
		}
		if n > 0 && seen+n >= rank {
			frac := (rank - seen) / n
			return lower + int64(frac*float64(upper-lower))
		}
		seen += n
		lower = upper
	}
	return lower
}

// funcMetric is a read-only metric backed by a closure; it mirrors
// counters that already exist elsewhere (service stats, broker totals,
// resilient-caller counters) into the registry with zero hot-path cost.
type funcMetric func() uint64

// Registry is a named collection of metrics. Handles are created lazily
// and idempotently: asking twice for the same name returns the same
// metric. Names follow the prometheus convention, with any labels
// embedded in the name itself (e.g. `core_activations_total{service="login"}`).
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the existing metric under name or stores the one built
// by mk.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil selects DefaultBuckets) on first use.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, func() any {
		if len(bounds) == 0 {
			bounds = DefaultBuckets()
		}
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return h
}

// Func registers a read-only metric whose value is produced by fn at
// scrape time. Registering the same name again replaces the closure.
func (r *Registry) Func(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = funcMetric(fn)
}

// snapshot copies the name->metric table so exposition runs without
// holding the registry lock while formatting.
func (r *Registry) snapshot() ([]string, map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	return names, metrics
}

// Value returns the current value of a counter, gauge or func metric by
// name (0 when absent); histograms report their observation count. It is
// a convenience for tests and experiments.
func (r *Registry) Value(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m := r.metrics[name]
	r.mu.Unlock()
	switch m := m.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return uint64(m.Value())
	case *Histogram:
		return m.Count()
	case funcMetric:
		return m()
	default:
		return 0
	}
}

// splitName divides a labelled metric name into base and label suffix so
// derived series (histogram _count/_sum/_bucket) keep the labels attached
// to the right spot: `x_ns{m="y"}` -> `x_ns_count{m="y"}`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WriteText writes every metric in the prometheus text exposition style:
// one `name value` line per scalar, and `_bucket{le=...}`/`_sum`/`_count`
// plus interpolated `_p50/_p95/_p99` series per histogram. Metrics appear
// in registration order, so related series stay adjacent.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	names, metrics := r.snapshot()
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case funcMetric:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m()); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, name, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	base, labels := splitName(name)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, base, labels, fmt.Sprintf("%d", bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, base, labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, h.Sum()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count()); err != nil {
		return err
	}
	for _, q := range []struct {
		tag string
		q   float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		if _, err := fmt.Fprintf(w, "%s_%s%s %d\n", base, q.tag, labels, h.Quantile(q.q)); err != nil {
			return err
		}
	}
	return nil
}

func writeBucket(w io.Writer, base, labels, le string, cum uint64) error {
	sep := "{"
	if labels != "" {
		// Splice le into the existing label set: {a="b"} -> {a="b",le="..."}.
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", base, sep, le, cum)
	return err
}
