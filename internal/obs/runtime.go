package obs

import "runtime"

// RegisterRuntimeMetrics exposes the process's resident-memory footprint
// on the registry as read-at-scrape function gauges. At million-principal
// scale the headline capacity question — what does a resident principal
// cost? — is answered by watching these alongside the per-service
// core_resident_crs and core_ecr_cache_entries gauges (E16). Each read
// calls runtime.ReadMemStats, which briefly stops the world; that cost is
// paid per scrape, never on an engine path.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.Func("runtime_heap_alloc_bytes", func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	})
	r.Func("runtime_heap_objects", func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapObjects
	})
	r.Func("runtime_goroutines", func() uint64 {
		return uint64(runtime.NumGoroutine())
	})
}
