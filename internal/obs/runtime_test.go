package obs

import (
	"strings"
	"testing"
)

func TestRuntimeMetricsExposed(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"runtime_heap_alloc_bytes",
		"runtime_heap_objects",
		"runtime_goroutines",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("metrics missing %s:\n%s", name, out)
		}
	}
	if reg.Value("runtime_heap_alloc_bytes") == 0 {
		t.Error("runtime_heap_alloc_bytes reads 0: a live process always has heap")
	}
	// Nil registry is a no-op, matching the nil-safety of the rest of obs.
	RegisterRuntimeMetrics(nil)
}
