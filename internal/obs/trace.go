package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one structured record in the engine's operation trace.
// Events are ordered by Seq (a global atomic sequence) and correlated by
// Corr: a role activation and every validation/revocation touching the
// same certificate share the certificate's key, and a revocation cascade
// shares one generated cascade id across all hops, with Depth recording
// each hop's distance from the root revocation.
type TraceEvent struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Kind    string    `json:"kind"`              // activate | validate | revoke | invoke | breaker | sweep | liveness | relay
	Service string    `json:"service,omitempty"` // reporting component
	Subject string    `json:"subject,omitempty"` // principal or certificate key
	Corr    string    `json:"corr,omitempty"`    // session/cert/cascade correlation id
	Outcome string    `json:"outcome,omitempty"` // ok | denied | degraded | unreachable | open | half-open | closed | ...
	Detail  string    `json:"detail,omitempty"`
	Depth   int       `json:"depth,omitempty"`  // cascade hops from the root revocation
	DurNs   int64     `json:"dur_ns,omitempty"` // operation or hop latency
}

// Tracer records TraceEvents into a fixed-size ring: recording never
// blocks and never allocates beyond the event itself, and once the ring
// wraps the oldest events are overwritten (Total minus the ring size
// counts the overwritten ones). Each slot has its own mutex, so
// concurrent recorders contend only when they hash to the same slot.
//
// The nil tracer discards all records, so instrumented code needs no
// enabled-check.
type Tracer struct {
	mask  uint64
	seq   atomic.Uint64
	slots []traceSlot

	now  func() time.Time
	echo atomic.Pointer[echoSink]
}

type traceSlot struct {
	mu sync.Mutex
	ev TraceEvent
	ok bool
}

// echoSink mirrors selected event kinds to a writer as human-readable
// lines — the obs layer's replacement for ad-hoc fmt.Printf logging in
// the daemons.
type echoSink struct {
	mu    sync.Mutex
	w     io.Writer
	kinds map[string]bool
}

// NewTracer creates a tracer whose ring holds capacity events (rounded up
// to a power of two; <=0 selects 4096).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Tracer{
		mask:  uint64(size - 1),
		slots: make([]traceSlot, size),
		now:   time.Now,
	}
}

// SetNow replaces the tracer's timestamp source (tests).
func (t *Tracer) SetNow(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

// Echo mirrors every recorded event whose Kind is in kinds to w as a
// formatted log line. Passing no kinds mirrors everything; passing a nil
// writer disables echoing.
func (t *Tracer) Echo(w io.Writer, kinds ...string) {
	if t == nil {
		return
	}
	if w == nil {
		t.echo.Store(nil)
		return
	}
	sink := &echoSink{w: w}
	if len(kinds) > 0 {
		sink.kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			sink.kinds[k] = true
		}
	}
	t.echo.Store(sink)
}

// Record appends one event to the trace, stamping Seq and, if unset, At.
func (t *Tracer) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	ev.Seq = t.seq.Add(1)
	if ev.At.IsZero() {
		ev.At = t.now()
	}
	s := &t.slots[ev.Seq&t.mask]
	s.mu.Lock()
	s.ev = ev
	s.ok = true
	s.mu.Unlock()

	if sink := t.echo.Load(); sink != nil && (sink.kinds == nil || sink.kinds[ev.Kind]) {
		sink.mu.Lock()
		fmt.Fprintln(sink.w, ev.line()) //nolint:errcheck // logging is best-effort
		sink.mu.Unlock()
	}
}

// line formats an event as a log line for Echo.
func (ev TraceEvent) line() string {
	out := fmt.Sprintf("%s [%s]", ev.At.Format(time.RFC3339), ev.Kind)
	for _, part := range []struct{ k, v string }{
		{"service", ev.Service}, {"subject", ev.Subject}, {"outcome", ev.Outcome}, {"detail", ev.Detail},
	} {
		if part.v != "" {
			out += " " + part.k + "=" + part.v
		}
	}
	return out
}

// Total returns how many events have ever been recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Snapshot returns the events currently held in the ring, oldest first.
func (t *Tracer) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	out := make([]TraceEvent, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.ok {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// traceDump is the JSON document served by /trace.
type traceDump struct {
	Total     uint64       `json:"total"`
	Retained  int          `json:"retained"`
	RingSize  int          `json:"ring_size"`
	Events    []TraceEvent `json:"events"`
	Truncated bool         `json:"truncated"` // ring has wrapped: oldest events were overwritten
}

// WriteJSON writes the retained trace (at most limit events, newest kept;
// limit <= 0 means all retained) as one JSON document.
func (t *Tracer) WriteJSON(w io.Writer, limit int) error {
	if t == nil {
		return nil
	}
	events := t.Snapshot()
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	total := t.Total()
	dump := traceDump{
		Total:     total,
		Retained:  len(events),
		RingSize:  len(t.slots),
		Events:    events,
		Truncated: total > uint64(len(t.slots)),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
