// Package policy implements the formal policy layer of OASIS: role
// activation rules and service authorization rules expressed in Horn clause
// logic (Sect. 2 of the paper). A role activation rule names the conditions
// a principal must meet to activate a role — prerequisite roles,
// appointment credentials, and environmental constraints — and a membership
// rule marks which of those conditions must remain true for the role to
// stay active. Authorization rules guard method invocation in the same
// condition language.
//
// The textual syntax, one statement per rule:
//
//	hospital.treating_doctor(D, P) <-
//	    hospital.doctor_on_duty(D),
//	    appt admin.allocated_patient(D, P),
//	    env registered(D, P),
//	    !env excluded(D, P)
//	    keep [1, 3].
//
//	auth read_record(P) <- hospital.treating_doctor(D, P).
//
// Conditions are, in order of the example: a prerequisite role (an RMC from
// service "hospital"), an appointment certificate of kind
// "allocated_patient" issued by "admin", an environmental predicate, and a
// negated environmental predicate (negation as failure over ground
// arguments). "keep [1, 3]" is the membership rule: conditions 1 and 3
// (1-based) must continue to hold while the role is active.
package policy

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/names"
)

// Cond is one condition in a rule body. Exactly one of the concrete types
// below implements it.
type Cond interface {
	fmt.Stringer
	// Vars appends the variable names mentioned by the condition.
	Vars(in []string) []string
	isCond()
}

// RoleCond requires the principal to hold an active role (prerequisite
// role, validated via its RMC) unifying with Role.
type RoleCond struct {
	Role names.Role
}

func (RoleCond) isCond() {}

// String renders the condition in policy syntax.
func (c RoleCond) String() string { return c.Role.String() }

// Vars implements Cond.
func (c RoleCond) Vars(in []string) []string { return termVars(in, c.Role.Params) }

// ApptCond requires an appointment certificate of the given kind from the
// given issuer whose parameters unify with Params.
type ApptCond struct {
	Issuer string
	Kind   string
	Params []names.Term
}

func (ApptCond) isCond() {}

// String renders the condition in policy syntax.
func (c ApptCond) String() string {
	return "appt " + c.Issuer + "." + c.Kind + renderTerms(c.Params)
}

// Vars implements Cond.
func (c ApptCond) Vars(in []string) []string { return termVars(in, c.Params) }

// EnvCond is an environmental constraint: a named predicate over terms,
// evaluated against the environment (database lookup, parameter relation,
// time of day, ...). If Negated, it succeeds when the predicate has no
// solutions (negation as failure); all its variables must already be bound.
type EnvCond struct {
	Name    string
	Args    []names.Term
	Negated bool
}

func (EnvCond) isCond() {}

// String renders the condition in policy syntax.
func (c EnvCond) String() string {
	neg := ""
	if c.Negated {
		neg = "!"
	}
	return neg + "env " + c.Name + renderTerms(c.Args)
}

// Vars implements Cond.
func (c EnvCond) Vars(in []string) []string { return termVars(in, c.Args) }

// Rule is a role activation rule: Head may be activated by a principal
// whose credentials satisfy every condition in Body. Membership lists the
// 1-based indices of body conditions that must remain true while the role
// is active (the membership rule of Sect. 2); an empty list means the role,
// once activated, is revoked only by session teardown.
type Rule struct {
	Head       names.Role
	Body       []Cond
	Membership []int
}

// String renders the rule in parsable policy syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	b.WriteString(" <- ")
	for i, c := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	if len(r.Membership) > 0 {
		b.WriteString(" keep [")
		for i, m := range r.Membership {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Itoa(m))
		}
		b.WriteString("]")
	}
	b.WriteString(".")
	return b.String()
}

// Validate checks structural well-formedness: membership indices in range,
// head variables bound by the body (no free head variables), and negated
// conditions whose variables are bound by earlier conditions.
func (r Rule) Validate() error {
	for _, m := range r.Membership {
		if m < 1 || m > len(r.Body) {
			return fmt.Errorf("rule %s: membership index %d out of range 1..%d",
				r.Head, m, len(r.Body))
		}
	}
	bound := make(map[string]bool)
	for i, c := range r.Body {
		if ec, ok := c.(EnvCond); ok && ec.Negated {
			for _, v := range c.Vars(nil) {
				if !bound[v] {
					return fmt.Errorf("rule %s: variable %s in negated condition %d is not bound by an earlier condition",
						r.Head, v, i+1)
				}
			}
			continue
		}
		for _, v := range c.Vars(nil) {
			bound[v] = true
		}
	}
	for _, v := range termVars(nil, r.Head.Params) {
		if !bound[v] {
			return fmt.Errorf("rule %s: head variable %s is not bound by the body", r.Head, v)
		}
	}
	return nil
}

// AuthRule authorizes invocation of Method when every condition holds.
// Args are the method's formal parameters; at invocation time they are
// unified with the actual arguments.
type AuthRule struct {
	Method string
	Args   []names.Term
	Body   []Cond
}

// String renders the rule in parsable policy syntax.
func (r AuthRule) String() string {
	var b strings.Builder
	b.WriteString("auth ")
	b.WriteString(r.Method)
	b.WriteString(renderTerms(r.Args))
	b.WriteString(" <- ")
	for i, c := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(".")
	return b.String()
}

// Policy is a parsed policy document: the activation rules and
// authorization rules of one service.
type Policy struct {
	Rules []Rule
	Auth  []AuthRule
}

// RulesFor returns the activation rules whose head role name matches name.
// Several rules for the same role name form alternative ways to activate
// it (Horn clause disjunction).
func (p Policy) RulesFor(name names.RoleName) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// AuthFor returns the authorization rules for a method name.
func (p Policy) AuthFor(method string) []AuthRule {
	var out []AuthRule
	for _, r := range p.Auth {
		if r.Method == method {
			out = append(out, r)
		}
	}
	return out
}

// Validate validates every rule in the policy.
func (p Policy) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func renderTerms(ts []names.Term) string {
	if len(ts) == 0 {
		return ""
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func termVars(in []string, ts []names.Term) []string {
	for _, t := range ts {
		if t.IsVar() {
			in = append(in, t.Sym)
		}
	}
	return in
}
