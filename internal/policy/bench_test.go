package policy

import (
	"testing"

	"repro/internal/names"
	"repro/internal/store"
)

const benchPolicy = `
hospital.treating_doctor(D, P) <-
    hospital.doctor_on_duty(D),
    appt admin.allocated_patient(D, P),
    env registered(D, P),
    !env excluded(D, P)
    keep [1, 3].
auth read_record(P) <- hospital.treating_doctor(D, P), !env excluded(D, P).
`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchPolicy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActivateRule(b *testing.B) {
	db := store.New()
	if _, err := db.Assert("registered", names.Atom("d1"), names.Atom("p1")); err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterStore("registered", db, "registered")
	reg.RegisterStore("excluded", db, "excluded")
	ev := NewEvaluator(reg)
	pol := MustParse(benchPolicy)
	creds := CredentialSet{
		Roles: []HeldRole{{
			Role: names.MustRole(names.MustRoleName("hospital", "doctor_on_duty", 1),
				names.Atom("d1")),
			Key: "k1",
		}},
		Appointments: []Appointment{{
			Issuer: "admin", Kind: "allocated_patient",
			Params: []names.Term{names.Atom("d1"), names.Atom("p1")},
			Key:    "a1",
		}},
	}
	req := names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
		names.Var("D"), names.Var("P"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := ev.Activate(pol.Rules[0], req, creds)
		if err != nil || !ok {
			b.Fatalf("activate = (%v, %v)", ok, err)
		}
	}
}

func BenchmarkAuthorizeRule(b *testing.B) {
	db := store.New()
	reg := NewRegistry()
	reg.RegisterStore("excluded", db, "excluded")
	ev := NewEvaluator(reg)
	pol := MustParse(benchPolicy)
	creds := CredentialSet{
		Roles: []HeldRole{{
			Role: names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
				names.Atom("d1"), names.Atom("p1")),
			Key: "k1",
		}},
	}
	args := []names.Term{names.Atom("p1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := ev.Authorize(pol.Auth[0], args, creds)
		if err != nil || !ok {
			b.Fatalf("authorize = (%v, %v)", ok, err)
		}
	}
}
