package policy

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/names"
	"repro/internal/store"
)

// Errors reported by evaluation.
var (
	// ErrUnknownPredicate is returned when a rule references an
	// environmental predicate that the service has not registered.
	ErrUnknownPredicate = errors.New("unknown environmental predicate")
	// ErrNonGroundNegation is returned when a negated condition is
	// reached with unbound variables.
	ErrNonGroundNegation = errors.New("negated condition with unbound variables")
)

// Appointment is the evaluator's view of a validated appointment
// certificate: the issuer, kind and ground parameters. Key identifies the
// underlying certificate record for membership monitoring; ExpiresAt, when
// non-zero, lets the engine deactivate dependent roles at the expiry
// instant (active security) rather than on next validation.
type Appointment struct {
	Issuer    string
	Kind      string
	Params    []names.Term
	Key       string
	ExpiresAt time.Time
}

// HeldRole is the evaluator's view of a validated RMC: the ground role and
// the key of its credential record for membership monitoring.
type HeldRole struct {
	Role names.Role
	Key  string
}

// CredentialSet is everything a principal has presented (and the service
// has validated) when requesting role activation or method invocation.
type CredentialSet struct {
	Roles        []HeldRole
	Appointments []Appointment
}

// Predicate evaluates an environmental constraint. Given the argument
// pattern (with the current substitution already applied by the caller
// being unnecessary — implementations receive the raw args and base
// substitution) it returns one extended substitution per solution.
type Predicate func(args []names.Term, base names.Substitution) []names.Substitution

// Registry maps environmental predicate names to their implementations.
// Services register database lookups, parameter relations and
// user-independent constraints (time of day, location) here.
type Registry struct {
	preds map[string]Predicate
}

// NewRegistry creates a registry preloaded with the comparison builtins
// eq, ne, lt, le, gt, ge.
func NewRegistry() *Registry {
	r := &Registry{preds: make(map[string]Predicate)}
	r.Register("eq", builtinEq)
	r.Register("ne", builtinNe)
	r.Register("lt", builtinCmp(func(a, b int64) bool { return a < b }))
	r.Register("le", builtinCmp(func(a, b int64) bool { return a <= b }))
	r.Register("gt", builtinCmp(func(a, b int64) bool { return a > b }))
	r.Register("ge", builtinCmp(func(a, b int64) bool { return a >= b }))
	return r
}

// Register installs (or replaces) a predicate.
func (r *Registry) Register(name string, p Predicate) { r.preds[name] = p }

// RegisterStore installs a predicate backed by a store relation: solutions
// are the stored tuples unifying with the arguments. This is the paper's
// "ascertained by database lookup at some service".
func (r *Registry) RegisterStore(name string, s *store.Store, relation string) {
	r.Register(name, func(args []names.Term, base names.Substitution) []names.Substitution {
		return s.Query(relation, args, base)
	})
}

// Lookup fetches a predicate.
func (r *Registry) Lookup(name string) (Predicate, bool) {
	p, ok := r.preds[name]
	return p, ok
}

// Names lists the registered predicate names, sorted (used by the
// consistency checker and tooling).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.preds))
	for name := range r.preds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func builtinEq(args []names.Term, base names.Substitution) []names.Substitution {
	if len(args) != 2 {
		return nil
	}
	if ext, ok := names.UnifyTuples(args[:1], args[1:], base); ok {
		return []names.Substitution{ext}
	}
	return nil
}

func builtinNe(args []names.Term, base names.Substitution) []names.Substitution {
	if len(args) != 2 {
		return nil
	}
	a, b := base.Apply(args[0]), base.Apply(args[1])
	if !a.IsGround() || !b.IsGround() {
		return nil
	}
	if a.Equal(b) {
		return nil
	}
	return []names.Substitution{base.Clone()}
}

func builtinCmp(ok func(a, b int64) bool) Predicate {
	return func(args []names.Term, base names.Substitution) []names.Substitution {
		if len(args) != 2 {
			return nil
		}
		a, b := base.Apply(args[0]), base.Apply(args[1])
		if a.Kind != names.KindInt || b.Kind != names.KindInt {
			return nil
		}
		if ok(a.Num, b.Num) {
			return []names.Substitution{base.Clone()}
		}
		return nil
	}
}

// Match records how one body condition was satisfied, for membership
// monitoring: the specific credential or ground environmental fact whose
// later invalidation must deactivate the role.
type Match struct {
	// Cond is the rule condition as written.
	Cond Cond
	// Role is set for RoleCond: the held role that satisfied it.
	Role *HeldRole
	// Appt is set for ApptCond: the appointment that satisfied it.
	Appt *Appointment
	// EnvName/EnvArgs are set for EnvCond: the (ground, where bound)
	// instantiation that was checked.
	EnvName string
	EnvArgs []names.Term
}

// Solution is a successful rule evaluation: the satisfying substitution and
// one Match per body condition (in body order).
type Solution struct {
	Subst   names.Substitution
	Matches []Match
}

// Evaluator solves rule bodies against credential sets and the
// environmental predicate registry.
type Evaluator struct {
	Env *Registry
}

// NewEvaluator creates an evaluator over the given registry.
func NewEvaluator(env *Registry) *Evaluator {
	if env == nil {
		env = NewRegistry()
	}
	return &Evaluator{Env: env}
}

// Activate attempts to satisfy rule for the requested role instance. The
// request's ground parameters constrain the head; on success the returned
// solution's substitution makes the head ground.
func (e *Evaluator) Activate(rule Rule, requested names.Role, creds CredentialSet) (Solution, bool, error) {
	base := names.NewSubstitution()
	base, ok := rule.Head.Unify(requested, base)
	if !ok {
		return Solution{}, false, nil
	}
	return e.solveBody(rule.Body, base, creds)
}

// Authorize attempts to satisfy an authorization rule for a method call
// with the given ground actual arguments.
func (e *Evaluator) Authorize(rule AuthRule, actuals []names.Term, creds CredentialSet) (Solution, bool, error) {
	base, ok := names.UnifyTuples(rule.Args, actuals, names.NewSubstitution())
	if !ok {
		return Solution{}, false, nil
	}
	return e.solveBody(rule.Body, base, creds)
}

// solveBody backtracks over the conditions in order, returning the first
// full solution.
func (e *Evaluator) solveBody(body []Cond, base names.Substitution, creds CredentialSet) (Solution, bool, error) {
	matches := make([]Match, len(body))
	s, ok, err := e.solve(body, 0, base, creds, matches)
	if err != nil || !ok {
		return Solution{}, false, err
	}
	return Solution{Subst: s, Matches: matches}, true, nil
}

func (e *Evaluator) solve(body []Cond, i int, s names.Substitution, creds CredentialSet, matches []Match) (names.Substitution, bool, error) {
	if i == len(body) {
		return s, true, nil
	}
	switch c := body[i].(type) {
	case RoleCond:
		for idx := range creds.Roles {
			held := &creds.Roles[idx]
			ext, ok := c.Role.Unify(held.Role, s)
			if !ok {
				continue
			}
			matches[i] = Match{Cond: c, Role: held}
			if out, ok, err := e.solve(body, i+1, ext, creds, matches); err != nil || ok {
				return out, ok, err
			}
		}
		return s, false, nil
	case ApptCond:
		for idx := range creds.Appointments {
			a := &creds.Appointments[idx]
			if a.Issuer != c.Issuer || a.Kind != c.Kind {
				continue
			}
			ext, ok := names.UnifyTuples(c.Params, a.Params, s)
			if !ok {
				continue
			}
			matches[i] = Match{Cond: c, Appt: a}
			if out, ok, err := e.solve(body, i+1, ext, creds, matches); err != nil || ok {
				return out, ok, err
			}
		}
		return s, false, nil
	case EnvCond:
		pred, found := e.Env.Lookup(c.Name)
		if !found {
			return s, false, fmt.Errorf("%w: %s", ErrUnknownPredicate, c.Name)
		}
		if c.Negated {
			resolved := s.ApplyAll(c.Args)
			for _, a := range resolved {
				if !a.IsGround() {
					return s, false, fmt.Errorf("%w: %s in !env %s", ErrNonGroundNegation, a, c.Name)
				}
			}
			if sols := pred(resolved, s); len(sols) > 0 {
				return s, false, nil
			}
			matches[i] = Match{Cond: c, EnvName: c.Name, EnvArgs: resolved}
			return e.solve(body, i+1, s, creds, matches)
		}
		for _, ext := range pred(c.Args, s) {
			matches[i] = Match{Cond: c, EnvName: c.Name, EnvArgs: ext.ApplyAll(c.Args)}
			if out, ok, err := e.solve(body, i+1, ext, creds, matches); err != nil || ok {
				return out, ok, err
			}
		}
		return s, false, nil
	default:
		return s, false, fmt.Errorf("unsupported condition type %T", body[i])
	}
}

// ActivateAny tries each rule in turn (Horn clause alternatives) and
// returns the first rule index that succeeds.
func (e *Evaluator) ActivateAny(rules []Rule, requested names.Role, creds CredentialSet) (int, Solution, bool, error) {
	for i, r := range rules {
		sol, ok, err := e.Activate(r, requested, creds)
		if err != nil {
			return 0, Solution{}, false, fmt.Errorf("rule %d (%s): %w", i+1, r.Head, err)
		}
		if ok {
			return i, sol, true, nil
		}
	}
	return 0, Solution{}, false, nil
}
