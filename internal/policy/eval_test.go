package policy

import (
	"errors"
	"testing"

	"repro/internal/names"
	"repro/internal/store"
)

func heldRole(key, service, role string, params ...names.Term) HeldRole {
	rn := names.MustRoleName(service, role, len(params))
	return HeldRole{Role: names.MustRole(rn, params...), Key: key}
}

func TestActivatePrerequisiteRoleOnly(t *testing.T) {
	pol := MustParse(`c.user(U) <- a.member(U) keep [1].`)
	ev := NewEvaluator(nil)
	creds := CredentialSet{Roles: []HeldRole{heldRole("k1", "a", "member", names.Atom("alice"))}}
	req := names.MustRole(names.MustRoleName("c", "user", 1), names.Var("X"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil || !ok {
		t.Fatalf("Activate = (%v,%v)", ok, err)
	}
	head := pol.Rules[0].Head.Apply(sol.Subst)
	if !head.IsGround() || head.Params[0] != names.Atom("alice") {
		t.Errorf("head = %s", head)
	}
	if sol.Matches[0].Role == nil || sol.Matches[0].Role.Key != "k1" {
		t.Errorf("match did not record credential: %+v", sol.Matches[0])
	}
}

func TestActivateFailsWithoutPrerequisite(t *testing.T) {
	pol := MustParse(`c.user(U) <- a.member(U).`)
	ev := NewEvaluator(nil)
	req := names.MustRole(names.MustRoleName("c", "user", 1), names.Var("X"))
	_, ok, err := ev.Activate(pol.Rules[0], req, CredentialSet{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("activation succeeded without prerequisite role")
	}
}

func TestActivateRequestedParamsConstrainHead(t *testing.T) {
	pol := MustParse(`c.user(U) <- a.member(U).`)
	ev := NewEvaluator(nil)
	creds := CredentialSet{Roles: []HeldRole{heldRole("k", "a", "member", names.Atom("alice"))}}
	// Requesting activation explicitly for bob must fail even though a
	// credential for alice exists.
	req := names.MustRole(names.MustRoleName("c", "user", 1), names.Atom("bob"))
	_, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("activation for bob satisfied by alice's credential")
	}
}

func TestActivateWrongRoleNameRejected(t *testing.T) {
	pol := MustParse(`c.user <- env ok.`)
	ev := NewEvaluator(nil)
	ev.Env.Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	req := names.MustRole(names.MustRoleName("c", "admin", 0))
	_, ok, err := ev.Activate(pol.Rules[0], req, CredentialSet{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("rule for c.user activated c.admin")
	}
}

func TestActivateWithAppointment(t *testing.T) {
	pol := MustParse(`ri.visiting_doctor(D) <- appt hospital.employed_as_doctor(D), ri.guest(D).`)
	ev := NewEvaluator(nil)
	creds := CredentialSet{
		Roles: []HeldRole{heldRole("g", "ri", "guest", names.Atom("jones"))},
		Appointments: []Appointment{{
			Issuer: "hospital", Kind: "employed_as_doctor",
			Params: []names.Term{names.Atom("jones")}, Key: "appt-1",
		}},
	}
	req := names.MustRole(names.MustRoleName("ri", "visiting_doctor", 1), names.Var("W"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil || !ok {
		t.Fatalf("Activate = (%v, %v)", ok, err)
	}
	if sol.Matches[0].Appt == nil || sol.Matches[0].Appt.Key != "appt-1" {
		t.Errorf("appointment match missing: %+v", sol.Matches[0])
	}
}

func TestAppointmentIssuerAndKindMustMatch(t *testing.T) {
	pol := MustParse(`s.r(D) <- appt hospital.employed_as_doctor(D).`)
	ev := NewEvaluator(nil)
	req := names.MustRole(names.MustRoleName("s", "r", 1), names.Var("D"))
	for _, creds := range []CredentialSet{
		{Appointments: []Appointment{{Issuer: "clinic", Kind: "employed_as_doctor", Params: []names.Term{names.Atom("x")}}}},
		{Appointments: []Appointment{{Issuer: "hospital", Kind: "employed_as_nurse", Params: []names.Term{names.Atom("x")}}}},
	} {
		if _, ok, err := ev.Activate(pol.Rules[0], req, creds); err != nil || ok {
			t.Errorf("mismatched appointment accepted (ok=%v err=%v)", ok, err)
		}
	}
}

func TestEnvStoreBackedLookup(t *testing.T) {
	// "doctors may access the records of patients registered with them"
	db := store.New()
	if _, err := db.Assert("registered", names.Atom("d1"), names.Atom("p1")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterStore("registered", db, "registered")
	ev := NewEvaluator(reg)

	pol := MustParse(`h.treating_doctor(D, P) <- h.doctor(D), env registered(D, P).`)
	creds := CredentialSet{Roles: []HeldRole{heldRole("k", "h", "doctor", names.Atom("d1"))}}
	req := names.MustRole(names.MustRoleName("h", "treating_doctor", 2),
		names.Var("D"), names.Var("P"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil || !ok {
		t.Fatalf("Activate = (%v,%v)", ok, err)
	}
	head := pol.Rules[0].Head.Apply(sol.Subst)
	if head.Params[1] != names.Atom("p1") {
		t.Errorf("patient bound to %v", head.Params[1])
	}
	if sol.Matches[1].EnvName != "registered" || len(sol.Matches[1].EnvArgs) != 2 {
		t.Errorf("env match = %+v", sol.Matches[1])
	}
}

func TestNegationAsFailureExclusion(t *testing.T) {
	// "Fred Smith may not access my health record" — per-patient
	// exclusion (paper Sect. 2).
	db := store.New()
	if _, err := db.Assert("registered", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Assert("excluded", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterStore("registered", db, "registered")
	reg.RegisterStore("excluded", db, "excluded")
	ev := NewEvaluator(reg)

	pol := MustParse(`h.treating_doctor(D, P) <- h.doctor(D), env registered(D, P), !env excluded(D, P).`)
	creds := CredentialSet{Roles: []HeldRole{heldRole("k", "h", "doctor", names.Atom("fred"))}}
	req := names.MustRole(names.MustRoleName("h", "treating_doctor", 2),
		names.Var("D"), names.Var("P"))
	if _, ok, err := ev.Activate(pol.Rules[0], req, creds); err != nil || ok {
		t.Errorf("excluded doctor activated role (ok=%v err=%v)", ok, err)
	}

	// Remove the exclusion: activation now succeeds.
	if _, err := db.Retract("excluded", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ev.Activate(pol.Rules[0], req, creds); err != nil || !ok {
		t.Errorf("activation failed after exclusion removed (ok=%v err=%v)", ok, err)
	}
}

func TestBacktrackingAcrossCredentials(t *testing.T) {
	// Two doctor credentials; only the second has a registration. The
	// solver must backtrack from d1 to d2.
	db := store.New()
	if _, err := db.Assert("registered", names.Atom("d2"), names.Atom("p9")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterStore("registered", db, "registered")
	ev := NewEvaluator(reg)
	pol := MustParse(`h.td(D, P) <- h.doctor(D), env registered(D, P).`)
	creds := CredentialSet{Roles: []HeldRole{
		heldRole("k1", "h", "doctor", names.Atom("d1")),
		heldRole("k2", "h", "doctor", names.Atom("d2")),
	}}
	req := names.MustRole(names.MustRoleName("h", "td", 2), names.Var("D"), names.Var("P"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil || !ok {
		t.Fatalf("Activate = (%v,%v)", ok, err)
	}
	if sol.Matches[0].Role.Key != "k2" {
		t.Errorf("solver matched %s, want k2 via backtracking", sol.Matches[0].Role.Key)
	}
}

func TestBuiltinComparisons(t *testing.T) {
	ev := NewEvaluator(nil)
	tests := []struct {
		src string
		ok  bool
	}{
		{`s.r <- env eq(1, 1).`, true},
		{`s.r <- env eq(1, 2).`, false},
		{`s.r <- env ne(1, 2).`, true},
		{`s.r <- env ne(a, a).`, false},
		{`s.r <- env lt(1, 2).`, true},
		{`s.r <- env lt(2, 1).`, false},
		{`s.r <- env le(2, 2).`, true},
		{`s.r <- env gt(3, 2).`, true},
		{`s.r <- env ge(2, 3).`, false},
		{`s.r <- env lt(a, b).`, false}, // non-integers never compare
	}
	req := names.MustRole(names.MustRoleName("s", "r", 0))
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			pol := MustParse(tt.src)
			_, ok, err := ev.Activate(pol.Rules[0], req, CredentialSet{})
			if err != nil {
				t.Fatal(err)
			}
			if ok != tt.ok {
				t.Errorf("ok = %v, want %v", ok, tt.ok)
			}
		})
	}
}

func TestEqBindsVariable(t *testing.T) {
	ev := NewEvaluator(nil)
	pol := MustParse(`s.r(X) <- s.base(X2), env eq(X, X2).`)
	creds := CredentialSet{Roles: []HeldRole{heldRole("k", "s", "base", names.Int(5))}}
	req := names.MustRole(names.MustRoleName("s", "r", 1), names.Var("Y"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, creds)
	if err != nil || !ok {
		t.Fatalf("Activate = (%v,%v)", ok, err)
	}
	if got := sol.Subst.Apply(names.Var("Y")); got != names.Int(5) {
		t.Errorf("Y = %v", got)
	}
}

func TestUnknownPredicateError(t *testing.T) {
	ev := NewEvaluator(nil)
	pol := MustParse(`s.r <- env nonexistent.`)
	req := names.MustRole(names.MustRoleName("s", "r", 0))
	_, _, err := ev.Activate(pol.Rules[0], req, CredentialSet{})
	if !errors.Is(err, ErrUnknownPredicate) {
		t.Errorf("err = %v", err)
	}
}

func TestNonGroundNegationError(t *testing.T) {
	// Construct directly: the parser's Validate would reject this text,
	// but a runtime credential may fail to bind a variable, so the
	// evaluator must also defend itself.
	reg := NewRegistry()
	reg.Register("p", func(args []names.Term, s names.Substitution) []names.Substitution { return nil })
	ev := NewEvaluator(reg)
	rule := Rule{
		Head: names.MustRole(names.MustRoleName("s", "r", 0)),
		Body: []Cond{EnvCond{Name: "p", Args: []names.Term{names.Var("X")}, Negated: true}},
	}
	req := names.MustRole(names.MustRoleName("s", "r", 0))
	_, _, err := ev.Activate(rule, req, CredentialSet{})
	if !errors.Is(err, ErrNonGroundNegation) {
		t.Errorf("err = %v", err)
	}
}

func TestAuthorize(t *testing.T) {
	db := store.New()
	if _, err := db.Assert("excluded", names.Atom("fred"), names.Atom("joe")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.RegisterStore("excluded", db, "excluded")
	ev := NewEvaluator(reg)
	pol := MustParse(`auth read_record(P) <- h.treating_doctor(D, P), !env excluded(D, P).`)

	fredCreds := CredentialSet{Roles: []HeldRole{
		heldRole("k", "h", "treating_doctor", names.Atom("fred"), names.Atom("joe")),
	}}
	_, ok, err := ev.Authorize(pol.Auth[0], []names.Term{names.Atom("joe")}, fredCreds)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("excluded doctor authorized to read record")
	}

	annCreds := CredentialSet{Roles: []HeldRole{
		heldRole("k", "h", "treating_doctor", names.Atom("ann"), names.Atom("joe")),
	}}
	_, ok, err = ev.Authorize(pol.Auth[0], []names.Term{names.Atom("joe")}, annCreds)
	if err != nil || !ok {
		t.Errorf("legitimate doctor refused (ok=%v err=%v)", ok, err)
	}

	// Wrong patient argument never authorizes.
	_, ok, err = ev.Authorize(pol.Auth[0], []names.Term{names.Atom("someone_else")}, annCreds)
	if err != nil || ok {
		t.Errorf("authorization for unrelated patient (ok=%v err=%v)", ok, err)
	}
}

func TestActivateAny(t *testing.T) {
	pol := MustParse(`
login.user <- env password_ok.
login.user <- appt idp.sso_token.
`)
	reg := NewRegistry()
	reg.Register("password_ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return nil // password check fails
	})
	ev := NewEvaluator(reg)
	creds := CredentialSet{Appointments: []Appointment{{Issuer: "idp", Kind: "sso_token", Key: "a"}}}
	req := names.MustRole(names.MustRoleName("login", "user", 0))
	idx, _, ok, err := ev.ActivateAny(pol.Rules, req, creds)
	if err != nil || !ok {
		t.Fatalf("ActivateAny = (%v,%v)", ok, err)
	}
	if idx != 1 {
		t.Errorf("matched rule %d, want 1 (second alternative)", idx)
	}

	// No credentials at all: no rule fires.
	_, _, ok, err = ev.ActivateAny(pol.Rules, req, CredentialSet{})
	if err != nil || ok {
		t.Errorf("ActivateAny with no creds = (%v,%v)", ok, err)
	}
}

func TestActivateAnyWrapsPredicateError(t *testing.T) {
	pol := MustParse(`s.r <- env missing.`)
	ev := NewEvaluator(nil)
	req := names.MustRole(names.MustRoleName("s", "r", 0))
	_, _, _, err := ev.ActivateAny(pol.Rules, req, CredentialSet{})
	if !errors.Is(err, ErrUnknownPredicate) {
		t.Errorf("err = %v", err)
	}
}

func TestEnvEnumerationBacktracks(t *testing.T) {
	// The env predicate binds P to several candidates; a later condition
	// filters them. The solver must try each in order.
	db := store.New()
	for _, p := range []string{"p1", "p2", "p3"} {
		if _, err := db.Assert("registered", names.Atom("d"), names.Atom(p)); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	reg.RegisterStore("registered", db, "registered")
	reg.Register("is_p3", func(args []names.Term, s names.Substitution) []names.Substitution {
		if len(args) == 1 && s.Apply(args[0]) == names.Atom("p3") {
			return []names.Substitution{s.Clone()}
		}
		return nil
	})
	ev := NewEvaluator(reg)
	pol := MustParse(`s.r(P) <- env registered(d, P), env is_p3(P).`)
	req := names.MustRole(names.MustRoleName("s", "r", 1), names.Var("Q"))
	sol, ok, err := ev.Activate(pol.Rules[0], req, CredentialSet{})
	if err != nil || !ok {
		t.Fatalf("Activate = (%v,%v)", ok, err)
	}
	if got := sol.Subst.Apply(names.Var("Q")); got != names.Atom("p3") {
		t.Errorf("Q = %v, want p3", got)
	}
}
