package policy

import (
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestLexerNeverPanics throws structured noise at the full parser: any
// input must either parse or return a SyntaxError — never panic, never
// hang. (A seed-corpus fuzz in spirit, kept deterministic so it runs in
// every `go test`.)
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"a.b", "<-", "env", "appt", "auth", "keep", "(", ")", "[", "]",
		",", ".", "!", "X", "x", "42", "-7", `"str"`, "#c\n", " ", "\n",
		"<", "-", `"unterminated`, "_v", "a.b(X)", "keep [1]", "..",
		"\x00", "é", "日本",
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		for n := rng.Intn(12); n >= 0; n-- {
			b.WriteString(fragments[rng.Intn(len(fragments))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			pol, err := Parse(src)
			if err == nil {
				// Anything that parses must round-trip.
				for _, rule := range pol.Rules {
					if _, err := Parse(rule.String()); err != nil {
						t.Fatalf("rule %q from %q does not re-parse: %v", rule, src, err)
					}
				}
			}
		}()
	}
}

// TestParserRandomBytes feeds raw (often invalid UTF-8) byte soup.
func TestParserRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		raw := make([]byte, n)
		for j := range raw {
			raw[j] = byte(rng.Intn(256))
		}
		src := string(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %d bytes (valid utf8: %v): %v",
						n, utf8.ValidString(src), r)
				}
			}()
			Parse(src) //nolint:errcheck // only absence of panic matters
		}()
	}
}
