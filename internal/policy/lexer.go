package policy

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF      tokenKind = iota + 1
	tokIdent              // lower-case identifier: service, role, predicate, atom
	tokVar                // upper-case identifier or leading underscore: variable
	tokInt                // integer literal
	tokString             // double-quoted string
	tokLParen             // (
	tokRParen             // )
	tokLBracket           // [
	tokRBracket           // ]
	tokComma              // ,
	tokDot                // .
	tokArrow              // <-
	tokBang               // !
	tokKeep               // keyword keep
	tokAppt               // keyword appt
	tokEnv                // keyword env
	tokAuth               // keyword auth
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'<-'"
	case tokBang:
		return "'!'"
	case tokKeep:
		return "keyword keep"
	case tokAppt:
		return "keyword appt"
	case tokEnv:
		return "keyword env"
	case tokAuth:
		return "keyword auth"
	default:
		return "unknown token"
	}
}

// token is one lexeme with its source line for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
}

// SyntaxError reports a policy-text parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("policy syntax error at line %d: %s", e.Line, e.Msg)
}

var keywords = map[string]tokenKind{
	"keep": tokKeep,
	"appt": tokAppt,
	"env":  tokEnv,
	"auth": tokAuth,
}

// lex tokenises policy text. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", line})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case c == '!':
			toks = append(toks, token{tokBang, "!", line})
			i++
		case c == '<':
			if i+1 < n && src[i+1] == '-' {
				toks = append(toks, token{tokArrow, "<-", line})
				i += 2
			} else {
				return nil, &SyntaxError{line, "expected '<-'"}
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				if src[j] == '\n' {
					return nil, &SyntaxError{line, "newline in string literal"}
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, &SyntaxError{line, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), line})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' {
				j++
				if j >= n || src[j] < '0' || src[j] > '9' {
					return nil, &SyntaxError{line, "'-' must start an integer"}
				}
			}
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			i = j
			if kw, ok := keywords[word]; ok {
				toks = append(toks, token{kw, word, line})
			} else if isVarName(word) {
				toks = append(toks, token{tokVar, word, line})
			} else {
				toks = append(toks, token{tokIdent, word, line})
			}
		default:
			return nil, &SyntaxError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isVarName reports whether an identifier denotes a variable: leading
// upper-case letter or underscore, matching Prolog convention.
func isVarName(word string) bool {
	r := rune(word[0])
	return unicode.IsUpper(r) || r == '_'
}
