package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/names"
)

// The paper stresses that "it is essential to maintain consistency as
// policies evolve" (Sect. 1). This file implements a static consistency
// checker over a set of service policies: it cannot prove policies
// *correct*, but it catches the referential drift that creeps in when
// independently managed services evolve — conditions naming roles no
// service defines, appointment kinds no appointer rule can issue,
// environmental predicates that are never registered, and dead rules.

// Issue is one consistency finding.
type Issue struct {
	// Service is the policy the issue was found in ("" for global
	// findings).
	Service string
	// Rule is the rule's head (or auth method) the issue concerns.
	Rule string
	// Severity is "error" (will always fail at runtime) or "warning"
	// (suspicious but possibly intentional).
	Severity string
	// Msg describes the problem.
	Msg string
}

// String renders the issue for logs.
func (i Issue) String() string {
	where := i.Service
	if i.Rule != "" {
		where += ": " + i.Rule
	}
	return fmt.Sprintf("[%s] %s: %s", i.Severity, where, i.Msg)
}

// Checker accumulates the federation-wide view needed for consistency
// checking: every service's policy and the environmental predicates each
// service has registered.
type Checker struct {
	policies   map[string]Policy
	predicates map[string]map[string]bool // service -> predicate names
	externals  map[string]bool            // services known to exist elsewhere
}

// NewChecker creates an empty checker.
func NewChecker() *Checker {
	return &Checker{
		policies:   make(map[string]Policy),
		predicates: make(map[string]map[string]bool),
		externals:  make(map[string]bool),
	}
}

// AddExternal declares a service that exists outside this checker's view
// (e.g. behind a -peer in a multi-process deployment): references to its
// roles and appointments cannot be verified here and are reported as
// warnings instead of errors.
func (c *Checker) AddExternal(name string) { c.externals[name] = true }

// AddService registers a service's policy and its known environmental
// predicate names (pass the registry's contents; builtins are implied).
func (c *Checker) AddService(name string, pol Policy, predicateNames []string) {
	c.policies[name] = pol
	preds := make(map[string]bool, len(predicateNames)+6)
	for _, p := range predicateNames {
		preds[p] = true
	}
	for _, builtin := range []string{"eq", "ne", "lt", "le", "gt", "ge"} {
		preds[builtin] = true
	}
	c.predicates[name] = preds
}

// Check returns all findings, deterministically ordered.
func (c *Checker) Check() []Issue {
	var issues []Issue

	// Index what is defined where.
	definedRoles := make(map[string]bool) // RoleName.String()
	appointable := make(map[string]bool)  // issuer.kind with an appointer rule
	usedRoles := make(map[string]bool)    // role names used as conditions
	usedAppts := make(map[string]bool)    // issuer.kind used as conditions
	for svc, pol := range c.policies {
		for _, r := range pol.Rules {
			definedRoles[r.Head.Name.String()] = true
		}
		for _, a := range pol.Auth {
			if strings.HasPrefix(a.Method, appointRulePrefix) {
				kind := strings.TrimPrefix(a.Method, appointRulePrefix)
				appointable[svc+"."+kind] = true
			}
		}
	}

	services := make([]string, 0, len(c.policies))
	for svc := range c.policies {
		services = append(services, svc)
	}
	sort.Strings(services)

	for _, svc := range services {
		pol := c.policies[svc]
		preds := c.predicates[svc]
		checkBody := func(ruleName string, body []Cond) {
			for _, cond := range body {
				switch cnd := cond.(type) {
				case RoleCond:
					usedRoles[cnd.Role.Name.String()] = true
					if !definedRoles[cnd.Role.Name.String()] {
						if c.externals[cnd.Role.Name.Service] {
							issues = append(issues, Issue{
								Service: svc, Rule: ruleName, Severity: "warning",
								Msg: fmt.Sprintf("prerequisite role %s is defined by an external service; not verifiable here", cnd.Role.Name),
							})
						} else {
							issues = append(issues, Issue{
								Service: svc, Rule: ruleName, Severity: "error",
								Msg: fmt.Sprintf("prerequisite role %s is not defined by any registered service", cnd.Role.Name),
							})
						}
					}
				case ApptCond:
					key := cnd.Issuer + "." + cnd.Kind
					usedAppts[key] = true
					if c.externals[cnd.Issuer] {
						issues = append(issues, Issue{
							Service: svc, Rule: ruleName, Severity: "warning",
							Msg: fmt.Sprintf("appointment %s is issued by an external service; not verifiable here", key),
						})
					} else if _, known := c.policies[cnd.Issuer]; !known {
						issues = append(issues, Issue{
							Service: svc, Rule: ruleName, Severity: "warning",
							Msg: fmt.Sprintf("appointment issuer %s is not a registered service (external issuer?)", cnd.Issuer),
						})
					} else if !appointable[key] {
						issues = append(issues, Issue{
							Service: svc, Rule: ruleName, Severity: "error",
							Msg: fmt.Sprintf("no appointer rule auth %s%s at service %s", appointRulePrefix, cnd.Kind, cnd.Issuer),
						})
					}
				case EnvCond:
					if !preds[cnd.Name] {
						issues = append(issues, Issue{
							Service: svc, Rule: ruleName, Severity: "error",
							Msg: fmt.Sprintf("environmental predicate %q is not registered", cnd.Name),
						})
					}
				}
			}
		}
		for _, r := range pol.Rules {
			checkBody(r.Head.String(), r.Body)
		}
		for _, a := range pol.Auth {
			checkBody("auth "+a.Method, a.Body)
		}
	}

	// Dead definitions: roles never used as a condition anywhere and
	// guarding nothing (no auth rule mentions them) are flagged; initial
	// roles are typically used, so this catches renamed-but-forgotten
	// roles.
	for _, svc := range services {
		pol := c.policies[svc]
		for _, r := range pol.Rules {
			name := r.Head.Name.String()
			if usedRoles[name] {
				continue
			}
			issues = append(issues, Issue{
				Service: svc, Rule: r.Head.String(), Severity: "warning",
				Msg: "role is defined but never required by any rule (dead role?)",
			})
		}
		// Appointer rules whose kind no policy consumes.
		for _, a := range pol.Auth {
			if !strings.HasPrefix(a.Method, appointRulePrefix) {
				continue
			}
			kind := strings.TrimPrefix(a.Method, appointRulePrefix)
			if !usedAppts[svc+"."+kind] {
				issues = append(issues, Issue{
					Service: svc, Rule: "auth " + a.Method, Severity: "warning",
					Msg: fmt.Sprintf("appointment kind %q is issuable but no activation rule consumes it", kind),
				})
			}
		}
	}

	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Service != issues[j].Service {
			return issues[i].Service < issues[j].Service
		}
		if issues[i].Rule != issues[j].Rule {
			return issues[i].Rule < issues[j].Rule
		}
		return issues[i].Msg < issues[j].Msg
	})
	return issues
}

// appointRulePrefix mirrors core's appointer-rule naming convention
// (`auth appoint_<kind>`); duplicated here to keep the policy package
// independent of the engine.
const appointRulePrefix = "appoint_"

// Errors filters the findings to severity "error".
func Errors(issues []Issue) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Severity == "error" {
			out = append(out, i)
		}
	}
	return out
}

// RolesDefined lists the role names a policy defines (helper for tools).
func RolesDefined(pol Policy) []names.RoleName {
	seen := make(map[string]bool)
	var out []names.RoleName
	for _, r := range pol.Rules {
		if !seen[r.Head.Name.String()] {
			seen[r.Head.Name.String()] = true
			out = append(out, r.Head.Name)
		}
	}
	return out
}
