package policy

import (
	"strings"
	"testing"
)

func checkerWith(t *testing.T, services map[string]struct {
	pol   string
	preds []string
}) []Issue {
	t.Helper()
	c := NewChecker()
	for name, s := range services {
		c.AddService(name, MustParse(s.pol), s.preds)
	}
	return c.Check()
}

func hasIssue(issues []Issue, severity, substr string) bool {
	for _, i := range issues {
		if i.Severity == severity && strings.Contains(i.Msg, substr) {
			return true
		}
	}
	return false
}

func TestCheckerCleanFederation(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"login": {`login.user <- env password_ok.`, []string{"password_ok"}},
		"admin": {`admin.officer <- login.user.
auth appoint_badge(K) <- admin.officer.`, nil},
		"site": {`site.contractor <- appt admin.badge(K), admin.officer keep [1].`, nil},
	})
	for _, i := range issues {
		if i.Severity == "error" {
			t.Errorf("unexpected error: %s", i)
		}
	}
}

func TestCheckerUndefinedPrerequisiteRole(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"b": {`b.r <- a.ghost keep [1].`, nil},
	})
	if !hasIssue(issues, "error", "not defined by any registered service") {
		t.Errorf("missing undefined-role error: %v", issues)
	}
}

func TestCheckerUnregisteredPredicate(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"s": {`s.r <- env mystery.`, nil},
	})
	if !hasIssue(issues, "error", `environmental predicate "mystery"`) {
		t.Errorf("missing predicate error: %v", issues)
	}
	// Builtins never trigger it.
	issues = checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"s": {`s.r <- env eq(1, 1).`, nil},
	})
	if hasIssue(issues, "error", "environmental predicate") {
		t.Errorf("builtin flagged: %v", issues)
	}
}

func TestCheckerAppointmentWithoutAppointer(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"admin": {`admin.officer <- env ok.`, []string{"ok"}},
		"site":  {`site.c <- appt admin.badge(K).`, nil},
	})
	if !hasIssue(issues, "error", "no appointer rule auth appoint_badge") {
		t.Errorf("missing appointer error: %v", issues)
	}
}

func TestCheckerExternalIssuerIsWarning(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"site": {`site.c <- appt foreign_org.badge(K).`, nil},
	})
	if !hasIssue(issues, "warning", "not a registered service") {
		t.Errorf("missing external-issuer warning: %v", issues)
	}
	if len(Errors(issues)) != 0 {
		t.Errorf("external issuer should not be an error: %v", issues)
	}
}

func TestCheckerExternalServiceDowngradesToWarning(t *testing.T) {
	c := NewChecker()
	c.AddService("b", MustParse(`b.r <- a.remote_role, appt a.remote_kind(K) keep [1].`), nil)
	c.AddExternal("a")
	issues := c.Check()
	if len(Errors(issues)) != 0 {
		t.Errorf("external references reported as errors: %v", issues)
	}
	warnings := 0
	for _, i := range issues {
		if i.Severity == "warning" && strings.Contains(i.Msg, "external service") {
			warnings++
		}
	}
	if warnings != 2 {
		t.Errorf("got %d external warnings, want 2: %v", warnings, issues)
	}
}

func TestCheckerDeadRoleWarning(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"s": {`s.orphan <- env ok.`, []string{"ok"}},
	})
	if !hasIssue(issues, "warning", "dead role") {
		t.Errorf("missing dead-role warning: %v", issues)
	}
}

func TestCheckerUnconsumedAppointmentKind(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"admin": {`admin.officer <- env ok.
auth appoint_unused_kind(K) <- admin.officer.`, []string{"ok"}},
		"user_of_officer": {`user_of_officer.x <- admin.officer.`, nil},
	})
	if !hasIssue(issues, "warning", `appointment kind "unused_kind"`) {
		t.Errorf("missing unconsumed-kind warning: %v", issues)
	}
}

func TestCheckerAuthRuleBodiesChecked(t *testing.T) {
	issues := checkerWith(t, map[string]struct {
		pol   string
		preds []string
	}{
		"s": {`auth read(F) <- s.ghost_role(F).`, nil},
	})
	if !hasIssue(issues, "error", "not defined") {
		t.Errorf("auth body not checked: %v", issues)
	}
}

func TestErrorsFilter(t *testing.T) {
	issues := []Issue{
		{Severity: "warning", Msg: "w"},
		{Severity: "error", Msg: "e"},
	}
	errs := Errors(issues)
	if len(errs) != 1 || errs[0].Msg != "e" {
		t.Errorf("Errors = %v", errs)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Service: "s", Rule: "s.r", Severity: "error", Msg: "boom"}
	if got := i.String(); !strings.Contains(got, "s.r") || !strings.Contains(got, "boom") {
		t.Errorf("String = %q", got)
	}
}

func TestRolesDefined(t *testing.T) {
	pol := MustParse(`
s.a <- env ok.
s.a <- env ok2.
s.b(X) <- s.a, env bind(X).
`)
	roles := RolesDefined(pol)
	if len(roles) != 2 {
		t.Errorf("RolesDefined = %v", roles)
	}
}

func TestCheckerDeterministicOrder(t *testing.T) {
	run := func() string {
		issues := checkerWith(t, map[string]struct {
			pol   string
			preds []string
		}{
			"zz": {`zz.r <- a.ghost, env missing.`, nil},
			"aa": {`aa.r <- b.ghost, env missing.`, nil},
		})
		var b strings.Builder
		for _, i := range issues {
			b.WriteString(i.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if run() != first {
			t.Fatal("issue order is not deterministic")
		}
	}
}
