package policy

import (
	"fmt"
	"strconv"

	"repro/internal/names"
)

// Parse parses a policy document: a sequence of role activation rules and
// authorization rules, each terminated by '.'.
func Parse(src string) (Policy, error) {
	toks, err := lex(src)
	if err != nil {
		return Policy{}, err
	}
	p := &parser{toks: toks}
	var pol Policy
	for !p.at(tokEOF) {
		if p.at(tokAuth) {
			r, err := p.authRule()
			if err != nil {
				return Policy{}, err
			}
			pol.Auth = append(pol.Auth, r)
			continue
		}
		r, err := p.activationRule()
		if err != nil {
			return Policy{}, err
		}
		pol.Rules = append(pol.Rules, r)
	}
	if err := pol.Validate(); err != nil {
		return Policy{}, err
	}
	return pol, nil
}

// MustParse is Parse that panics; for fixtures and examples.
func MustParse(src string) Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, &SyntaxError{t.line, fmt.Sprintf("expected %s, found %s %q", k, t.kind, t.text)}
	}
	return p.advance(), nil
}

// activationRule := role '<-' cond (',' cond)* ['keep' '[' int (',' int)* ']'] '.'
func (p *parser) activationRule() (Rule, error) {
	head, err := p.role()
	if err != nil {
		return Rule{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return Rule{}, err
	}
	body, err := p.condList()
	if err != nil {
		return Rule{}, err
	}
	var membership []int
	if p.at(tokKeep) {
		p.advance()
		membership, err = p.intList()
		if err != nil {
			return Rule{}, err
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return Rule{}, err
	}
	return Rule{Head: head, Body: body, Membership: membership}, nil
}

// authRule := 'auth' ident terms? '<-' cond (',' cond)* '.'
func (p *parser) authRule() (AuthRule, error) {
	if _, err := p.expect(tokAuth); err != nil {
		return AuthRule{}, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return AuthRule{}, err
	}
	args, err := p.optTerms()
	if err != nil {
		return AuthRule{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return AuthRule{}, err
	}
	body, err := p.condList()
	if err != nil {
		return AuthRule{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return AuthRule{}, err
	}
	return AuthRule{Method: name.text, Args: args, Body: body}, nil
}

func (p *parser) condList() ([]Cond, error) {
	var conds []Cond
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if !p.at(tokComma) {
			return conds, nil
		}
		p.advance()
	}
}

// cond := ['!'] 'env' ident terms | 'appt' ident '.' ident terms? | role
func (p *parser) cond() (Cond, error) {
	switch {
	case p.at(tokBang):
		bang := p.advance()
		if !p.at(tokEnv) {
			return nil, &SyntaxError{bang.line, "'!' may only negate an env condition"}
		}
		ec, err := p.envCond()
		if err != nil {
			return nil, err
		}
		ec.Negated = true
		return ec, nil
	case p.at(tokEnv):
		return p.envCond()
	case p.at(tokAppt):
		return p.apptCond()
	default:
		r, err := p.role()
		if err != nil {
			return nil, err
		}
		return RoleCond{Role: r}, nil
	}
}

func (p *parser) envCond() (EnvCond, error) {
	if _, err := p.expect(tokEnv); err != nil {
		return EnvCond{}, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return EnvCond{}, err
	}
	args, err := p.optTerms()
	if err != nil {
		return EnvCond{}, err
	}
	return EnvCond{Name: name.text, Args: args}, nil
}

func (p *parser) apptCond() (ApptCond, error) {
	if _, err := p.expect(tokAppt); err != nil {
		return ApptCond{}, err
	}
	issuer, err := p.expect(tokIdent)
	if err != nil {
		return ApptCond{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return ApptCond{}, err
	}
	kind, err := p.expect(tokIdent)
	if err != nil {
		return ApptCond{}, err
	}
	params, err := p.optTerms()
	if err != nil {
		return ApptCond{}, err
	}
	return ApptCond{Issuer: issuer.text, Kind: kind.text, Params: params}, nil
}

// role := ident '.' ident terms?
func (p *parser) role() (names.Role, error) {
	service, err := p.expect(tokIdent)
	if err != nil {
		return names.Role{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return names.Role{}, err
	}
	roleTok, err := p.expect(tokIdent)
	if err != nil {
		return names.Role{}, err
	}
	params, err := p.optTerms()
	if err != nil {
		return names.Role{}, err
	}
	rn, err := names.NewRoleName(service.text, roleTok.text, len(params))
	if err != nil {
		return names.Role{}, &SyntaxError{roleTok.line, err.Error()}
	}
	role, err := names.NewRole(rn, params...)
	if err != nil {
		return names.Role{}, &SyntaxError{roleTok.line, err.Error()}
	}
	return role, nil
}

// optTerms := [ '(' term (',' term)* ')' ]
func (p *parser) optTerms() ([]names.Term, error) {
	if !p.at(tokLParen) {
		return nil, nil
	}
	p.advance()
	if p.at(tokRParen) {
		t := p.cur()
		return nil, &SyntaxError{t.line, "empty parameter list: omit the parentheses"}
	}
	var terms []names.Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return terms, nil
	}
}

func (p *parser) term() (names.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return names.Var(t.text), nil
	case tokIdent:
		p.advance()
		return names.Atom(t.text), nil
	case tokString:
		p.advance()
		return names.Str(t.text), nil
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return names.Term{}, &SyntaxError{t.line, "integer out of range: " + t.text}
		}
		return names.Int(n), nil
	default:
		return names.Term{}, &SyntaxError{t.line, fmt.Sprintf("expected a term, found %s %q", t.kind, t.text)}
	}
}

// intList := '[' int (',' int)* ']'
func (p *parser) intList() ([]int, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	var out []int
	for {
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, &SyntaxError{t.line, "bad index " + t.text}
		}
		out = append(out, n)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return out, nil
	}
}
