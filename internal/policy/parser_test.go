package policy

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/names"
)

func TestParseTreatingDoctorRule(t *testing.T) {
	src := `
# Activation rule for the treating_doctor role (paper Sect. 2 example).
hospital.treating_doctor(D, P) <-
    hospital.doctor_on_duty(D),
    appt admin.allocated_patient(D, P),
    env registered(D, P),
    !env excluded(D, P)
    keep [1, 3].
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(pol.Rules) != 1 {
		t.Fatalf("got %d rules", len(pol.Rules))
	}
	r := pol.Rules[0]
	wantHead := names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
		names.Var("D"), names.Var("P"))
	if r.Head.String() != wantHead.String() {
		t.Errorf("head = %s", r.Head)
	}
	if len(r.Body) != 4 {
		t.Fatalf("body has %d conds", len(r.Body))
	}
	if _, ok := r.Body[0].(RoleCond); !ok {
		t.Errorf("cond 1 is %T, want RoleCond", r.Body[0])
	}
	ac, ok := r.Body[1].(ApptCond)
	if !ok || ac.Issuer != "admin" || ac.Kind != "allocated_patient" {
		t.Errorf("cond 2 = %#v", r.Body[1])
	}
	ec, ok := r.Body[2].(EnvCond)
	if !ok || ec.Negated || ec.Name != "registered" {
		t.Errorf("cond 3 = %#v", r.Body[2])
	}
	nc, ok := r.Body[3].(EnvCond)
	if !ok || !nc.Negated || nc.Name != "excluded" {
		t.Errorf("cond 4 = %#v", r.Body[3])
	}
	if len(r.Membership) != 2 || r.Membership[0] != 1 || r.Membership[1] != 3 {
		t.Errorf("membership = %v", r.Membership)
	}
}

func TestParseAuthRule(t *testing.T) {
	src := `auth read_record(P) <- hospital.treating_doctor(D, P), !env excluded(D, P).`
	pol, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(pol.Auth) != 1 {
		t.Fatalf("got %d auth rules", len(pol.Auth))
	}
	a := pol.Auth[0]
	if a.Method != "read_record" || len(a.Args) != 1 || len(a.Body) != 2 {
		t.Errorf("auth rule = %#v", a)
	}
}

func TestParseZeroArityRole(t *testing.T) {
	src := `login.logged_in_user <- env authenticated_ok.`
	pol, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pol.Rules[0].Head.Name.Arity != 0 {
		t.Errorf("arity = %d", pol.Rules[0].Head.Name.Arity)
	}
}

func TestParseTermKinds(t *testing.T) {
	src := `s.r(X) <- env p(X, atom, "a string", 42, -7).`
	pol, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ec := pol.Rules[0].Body[0].(EnvCond)
	want := []names.Term{
		names.Var("X"), names.Atom("atom"), names.Str("a string"),
		names.Int(42), names.Int(-7),
	}
	if len(ec.Args) != len(want) {
		t.Fatalf("args = %v", ec.Args)
	}
	for i := range want {
		if ec.Args[i] != want[i] {
			t.Errorf("arg %d = %v, want %v", i, ec.Args[i], want[i])
		}
	}
}

func TestParseMultipleRulesAndComments(t *testing.T) {
	src := `
# initial role
login.user <- env password_ok.
# alternative activation
login.user <- appt idp.sso_token.
auth ping <- login.user.
`
	pol, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(pol.Rules) != 2 || len(pol.Auth) != 1 {
		t.Errorf("rules=%d auth=%d", len(pol.Rules), len(pol.Auth))
	}
	rn := names.MustRoleName("login", "user", 0)
	if got := pol.RulesFor(rn); len(got) != 2 {
		t.Errorf("RulesFor = %d rules", len(got))
	}
	if got := pol.AuthFor("ping"); len(got) != 1 {
		t.Errorf("AuthFor = %d rules", len(got))
	}
	if got := pol.AuthFor("missing"); len(got) != 0 {
		t.Errorf("AuthFor(missing) = %d", len(got))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"missing dot", `a.b <- env p`, "expected"},
		{"missing arrow", `a.b env p.`, "'<-'"},
		{"bad char", `a.b <- env p @.`, "unexpected character"},
		{"unterminated string", `a.b <- env p("x.`, "unterminated"},
		{"negated role", `a.b <- !c.d.`, "'!' may only negate"},
		{"empty params", `a.b() <- env p.`, "empty parameter list"},
		{"membership out of range", `a.b <- env p keep [2].`, "out of range"},
		{"free head variable", `a.b(X) <- env p.`, "head variable"},
		{"unbound negation", `a.b <- !env p(X).`, "not bound"},
		{"lone dash", `a.b <- env p(-x).`, "'-' must start an integer"},
		{"newline in string", "a.b <- env p(\"x\ny\").", "newline in string"},
		{"keyword as role", `a.keep <- env p.`, "expected"},
		{"bad <", `a.b < env p.`, "expected '<-'"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tt.src)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Parse("a.b <- env ok.\na.b <- env p @.")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T", err)
	}
	if se.Line != 2 {
		t.Errorf("Line = %d, want 2", se.Line)
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	src := `hospital.treating_doctor(D, P) <- hospital.doctor_on_duty(D), appt admin.allocated_patient(D, P), env registered(D, P), !env excluded(D, P) keep [1, 3].`
	pol, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := pol.Rules[0].String()
	pol2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if pol2.Rules[0].String() != rendered {
		t.Errorf("round trip changed rule:\n%s\n%s", rendered, pol2.Rules[0].String())
	}
}

func TestAuthRuleString(t *testing.T) {
	src := `auth read(P) <- h.doc(D, P).`
	pol := MustParse(src)
	rendered := pol.Auth[0].String()
	pol2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if pol2.Auth[0].String() != rendered {
		t.Errorf("auth round trip changed: %q vs %q", rendered, pol2.Auth[0].String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("not a policy")
}

func TestVarNamingConvention(t *testing.T) {
	// Leading underscore and upper-case are variables; lower-case are atoms.
	pol := MustParse(`s.r <- env p(_x, Upper, lower).`)
	args := pol.Rules[0].Body[0].(EnvCond).Args
	if !args[0].IsVar() || !args[1].IsVar() || args[2].IsVar() {
		t.Errorf("var classification wrong: %v", args)
	}
}
