package policy

import (
	"math/rand"
	"testing"

	"repro/internal/names"
)

// randTerm draws a ground or variable term over a small alphabet.
func randTerm(rng *rand.Rand, vars []string) names.Term {
	switch rng.Intn(4) {
	case 0:
		return names.Var(vars[rng.Intn(len(vars))])
	case 1:
		return names.Atom([]string{"alice", "st_marys", "p1", "x_9"}[rng.Intn(4)])
	case 2:
		return names.Str([]string{"ward 3", "a b c", ""}[rng.Intn(3)])
	default:
		return names.Int(rng.Int63n(2000) - 1000)
	}
}

// randRule builds a structurally valid rule: the first condition is a
// prerequisite role binding every variable the head or any negated
// condition may mention.
func randRule(rng *rand.Rand) Rule {
	vars := []string{"A", "B", "C"}
	// Binding condition: a role mentioning all variables.
	binder := RoleCond{Role: names.MustRole(
		names.MustRoleName("svc", "base", len(vars)),
		names.Var("A"), names.Var("B"), names.Var("C"))}
	body := []Cond{binder}
	for i := rng.Intn(4); i > 0; i-- {
		switch rng.Intn(3) {
		case 0:
			n := rng.Intn(3)
			params := make([]names.Term, n)
			for j := range params {
				params[j] = randTerm(rng, vars)
			}
			rn := names.MustRoleName("other", "r", n)
			body = append(body, RoleCond{Role: names.MustRole(rn, params...)})
		case 1:
			n := rng.Intn(3)
			params := make([]names.Term, n)
			for j := range params {
				params[j] = randTerm(rng, vars)
			}
			body = append(body, ApptCond{Issuer: "issuer", Kind: "kind", Params: params})
		default:
			n := 1 + rng.Intn(2)
			args := make([]names.Term, n)
			for j := range args {
				args[j] = randTerm(rng, vars)
			}
			body = append(body, EnvCond{
				Name:    []string{"registered", "on_duty"}[rng.Intn(2)],
				Args:    args,
				Negated: rng.Intn(3) == 0,
			})
		}
	}
	arity := rng.Intn(3)
	headParams := make([]names.Term, arity)
	for i := range headParams {
		headParams[i] = names.Var(vars[rng.Intn(len(vars))])
	}
	head := names.MustRole(names.MustRoleName("svc", "target", arity), headParams...)

	var membership []int
	for i := 1; i <= len(body); i++ {
		if rng.Intn(2) == 0 {
			membership = append(membership, i)
		}
	}
	return Rule{Head: head, Body: body, Membership: membership}
}

func TestRandomRuleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20011112))
	for i := 0; i < 500; i++ {
		rule := randRule(rng)
		if err := rule.Validate(); err != nil {
			t.Fatalf("generated rule invalid: %v\n%s", err, rule)
		}
		text := rule.String()
		pol, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		if len(pol.Rules) != 1 {
			t.Fatalf("re-parse yielded %d rules for %q", len(pol.Rules), text)
		}
		if got := pol.Rules[0].String(); got != text {
			t.Fatalf("round trip changed rule:\n before: %s\n after:  %s", text, got)
		}
	}
}

func TestRandomRuleEvaluates(t *testing.T) {
	// Every generated rule must at least evaluate without internal
	// errors when the referenced predicates exist (solutions optional).
	rng := rand.New(rand.NewSource(42))
	reg := NewRegistry()
	reg.Register("registered", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	reg.Register("on_duty", func(args []names.Term, s names.Substitution) []names.Substitution {
		return nil
	})
	ev := NewEvaluator(reg)
	creds := CredentialSet{
		Roles: []HeldRole{
			{Role: names.MustRole(names.MustRoleName("svc", "base", 3),
				names.Atom("alice"), names.Int(7), names.Str("ward 3")), Key: "k1"},
			{Role: names.MustRole(names.MustRoleName("other", "r", 0)), Key: "k2"},
			{Role: names.MustRole(names.MustRoleName("other", "r", 1), names.Atom("alice")), Key: "k3"},
			{Role: names.MustRole(names.MustRoleName("other", "r", 2),
				names.Atom("alice"), names.Int(7)), Key: "k4"},
		},
		Appointments: []Appointment{
			{Issuer: "issuer", Kind: "kind", Key: "a0"},
			{Issuer: "issuer", Kind: "kind", Params: []names.Term{names.Atom("alice")}, Key: "a1"},
			{Issuer: "issuer", Kind: "kind",
				Params: []names.Term{names.Atom("alice"), names.Int(7)}, Key: "a2"},
		},
	}
	for i := 0; i < 300; i++ {
		rule := randRule(rng)
		req := rule.Head // request with variables: any instantiation
		if _, _, err := ev.Activate(rule, req, creds); err != nil {
			t.Fatalf("evaluation error: %v\n%s", err, rule)
		}
	}
}
