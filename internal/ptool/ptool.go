// Package ptool implements the policy developer tooling behind
// cmd/policytool: syntax/consistency checking, canonical formatting, and
// activation tracing ("why does this role (not) activate for these
// credentials?"). The paper's policies are written and evolved by service
// administrators; this is the workbench a deployment would give them.
package ptool

import (
	"fmt"
	"strings"

	"repro/internal/cmdutil"
	"repro/internal/policy"
	"repro/internal/store"
)

// CheckResult is the outcome of checking one policy document.
type CheckResult struct {
	// Rules and AuthRules count the parsed statements.
	Rules     int
	AuthRules int
	// Issues are consistency findings treating the document as a
	// self-contained federation (references to other services surface
	// as findings).
	Issues []policy.Issue
}

// Check parses a policy and runs the consistency checker over it. The
// registered predicate names (beyond the comparison builtins) are taken
// from predicates.
func Check(policyText string, predicates []string) (CheckResult, error) {
	pol, err := policy.Parse(policyText)
	if err != nil {
		return CheckResult{}, err
	}
	services := make(map[string]bool)
	for _, r := range pol.Rules {
		services[r.Head.Name.Service] = true
	}
	checker := policy.NewChecker()
	if len(services) == 0 {
		checker.AddService("policy", pol, predicates)
	}
	first := true
	for svc := range services {
		if first {
			// Attach the whole document (including auth rules) to the
			// first defining service; a single-service policy file is
			// by far the common case.
			checker.AddService(svc, pol, predicates)
			first = false
			continue
		}
		checker.AddService(svc, policy.Policy{}, predicates)
	}
	return CheckResult{
		Rules:     len(pol.Rules),
		AuthRules: len(pol.Auth),
		Issues:    checker.Check(),
	}, nil
}

// Format parses and re-renders a policy in canonical form (one statement
// per line, normalised spacing).
func Format(policyText string) (string, error) {
	pol, err := policy.Parse(policyText)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range pol.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, a := range pol.Auth {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Trace explains one rule's evaluation: how far through the body the
// solver got with the given credentials.
type Trace struct {
	RuleIndex int
	Rule      string
	// Satisfied is the number of leading body conditions satisfiable
	// together (== len(body) when the rule fires).
	Satisfied int
	// Conditions has one entry per body condition.
	Conditions int
	// FailedCond renders the first condition that cannot be satisfied
	// ("" when the rule fires).
	FailedCond string
	// Fired reports whether the whole rule was satisfied.
	Fired bool
	// Bindings renders the solution substitution when fired.
	Bindings string
}

// EvalRequest bundles the inputs to Explain.
type EvalRequest struct {
	// PolicyText is the service policy under test.
	PolicyText string
	// FactsText feeds a fact store; every relation becomes a
	// store-backed environmental predicate of the same name.
	FactsText string
	// Role is the requested role instance, e.g. "hospital.doctor(D)".
	Role string
	// HeldRoles are the principal's validated RMCs as role instances.
	HeldRoles []string
	// Appointments are held appointment credentials as
	// "issuer.kind(params...)".
	Appointments []string
}

// Explain evaluates every activation rule for the requested role and
// reports a per-rule trace.
func Explain(req EvalRequest) ([]Trace, error) {
	pol, err := policy.Parse(req.PolicyText)
	if err != nil {
		return nil, err
	}
	target, err := cmdutil.ParseRoleInstance(req.Role)
	if err != nil {
		return nil, err
	}
	rules := pol.RulesFor(target.Name)
	if len(rules) == 0 {
		return nil, fmt.Errorf("no activation rule defines %s", target.Name)
	}

	db := store.New()
	reg := policy.NewRegistry()
	if req.FactsText != "" {
		relations, err := cmdutil.LoadFacts(db, req.FactsText)
		if err != nil {
			return nil, err
		}
		for _, rel := range relations {
			reg.RegisterStore(rel, db, rel)
		}
	}
	// Closed world: a predicate the policy mentions but the facts file
	// does not populate is an empty relation (positive conditions fail,
	// negated ones succeed) rather than an evaluation error.
	for _, rule := range pol.Rules {
		for _, cond := range rule.Body {
			if ec, ok := cond.(policy.EnvCond); ok {
				if _, known := reg.Lookup(ec.Name); !known {
					reg.RegisterStore(ec.Name, db, ec.Name)
				}
			}
		}
	}
	creds, err := buildCredentials(req.HeldRoles, req.Appointments)
	if err != nil {
		return nil, err
	}
	ev := policy.NewEvaluator(reg)

	traces := make([]Trace, 0, len(rules))
	for i, rule := range rules {
		tr := Trace{RuleIndex: i + 1, Rule: rule.String(), Conditions: len(rule.Body)}
		sol, ok, err := ev.Activate(rule, target, creds)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i+1, err)
		}
		if ok {
			tr.Fired = true
			tr.Satisfied = len(rule.Body)
			tr.Bindings = sol.Subst.String()
			traces = append(traces, tr)
			continue
		}
		// Find the longest satisfiable prefix by evaluating truncated
		// bodies.
		tr.Satisfied = 0
		for n := len(rule.Body) - 1; n >= 1; n-- {
			truncated := policy.Rule{Head: rule.Head, Body: rule.Body[:n]}
			if _, ok, err := ev.Activate(truncated, target, creds); err == nil && ok {
				tr.Satisfied = n
				break
			}
		}
		tr.FailedCond = rule.Body[tr.Satisfied].String()
		traces = append(traces, tr)
	}
	return traces, nil
}

// buildCredentials parses held-role and appointment specs into the
// evaluator's credential set (keys are synthetic; the tool evaluates
// policy, it does not verify signatures).
func buildCredentials(heldRoles, appointments []string) (policy.CredentialSet, error) {
	var creds policy.CredentialSet
	for i, spec := range heldRoles {
		r, err := cmdutil.ParseRoleInstance(spec)
		if err != nil {
			return policy.CredentialSet{}, fmt.Errorf("held role %q: %w", spec, err)
		}
		if !r.IsGround() {
			return policy.CredentialSet{}, fmt.Errorf("held role %q must be ground", spec)
		}
		creds.Roles = append(creds.Roles, policy.HeldRole{
			Role: r,
			Key:  fmt.Sprintf("held#%d", i+1),
		})
	}
	for i, spec := range appointments {
		r, err := cmdutil.ParseRoleInstance(spec) // same issuer.kind(params) shape
		if err != nil {
			return policy.CredentialSet{}, fmt.Errorf("appointment %q: %w", spec, err)
		}
		for _, p := range r.Params {
			if !p.IsGround() {
				return policy.CredentialSet{}, fmt.Errorf("appointment %q must be ground", spec)
			}
		}
		creds.Appointments = append(creds.Appointments, policy.Appointment{
			Issuer: r.Name.Service,
			Kind:   r.Name.Name,
			Params: r.Params,
			Key:    fmt.Sprintf("appt#%d", i+1),
		})
	}
	return creds, nil
}
