package ptool

import (
	"strings"
	"testing"
)

const hospitalPolicy = `
hospital.treating_doctor(D, P) <-
    hospital.doctor_on_duty(D),
    env registered(D, P),
    !env excluded(D, P)
    keep [1, 2].
hospital.doctor_on_duty(D) <- env on_duty(D) keep [1].
auth read_record(P) <- hospital.treating_doctor(D, P).
`

func TestCheckCountsAndCleanliness(t *testing.T) {
	res, err := Check(hospitalPolicy, []string{"registered", "excluded", "on_duty"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules != 2 || res.AuthRules != 1 {
		t.Errorf("counts = %d/%d", res.Rules, res.AuthRules)
	}
	for _, issue := range res.Issues {
		if issue.Severity == "error" {
			t.Errorf("unexpected error: %s", issue)
		}
	}
}

func TestCheckFindsMissingPredicate(t *testing.T) {
	res, err := Check(hospitalPolicy, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, issue := range res.Issues {
		if issue.Severity == "error" && strings.Contains(issue.Msg, "registered") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing predicate not flagged: %v", res.Issues)
	}
}

func TestCheckParseError(t *testing.T) {
	if _, err := Check("not a policy", nil); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckAuthOnlyDocument(t *testing.T) {
	res, err := Check(`auth ping <- external.user.`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthRules != 1 {
		t.Errorf("AuthRules = %d", res.AuthRules)
	}
}

func TestFormatCanonical(t *testing.T) {
	messy := "s.r(X)<-s.base(X),env p(X)  keep [1]  .\nauth m <- s.r(Y)."
	out, err := Format(messy)
	if err != nil {
		t.Fatal(err)
	}
	want := "s.r(X) <- s.base(X), env p(X) keep [1].\nauth m <- s.r(Y).\n"
	if out != want {
		t.Errorf("Format:\n got %q\nwant %q", out, want)
	}
	// Formatting is idempotent.
	again, err := Format(out)
	if err != nil || again != out {
		t.Errorf("not idempotent: %q vs %q (%v)", again, out, err)
	}
}

func TestFormatError(t *testing.T) {
	if _, err := Format("x <-"); err == nil {
		t.Error("garbage formatted")
	}
}

func TestExplainFiringRule(t *testing.T) {
	traces, err := Explain(EvalRequest{
		PolicyText: hospitalPolicy,
		FactsText: `
on_duty dr_ann
registered dr_ann joe
`,
		Role:      "hospital.treating_doctor(D, P)",
		HeldRoles: []string{"hospital.doctor_on_duty(dr_ann)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if !tr.Fired || tr.Satisfied != tr.Conditions {
		t.Errorf("trace = %+v", tr)
	}
	if !strings.Contains(tr.Bindings, "dr_ann") || !strings.Contains(tr.Bindings, "joe") {
		t.Errorf("bindings = %q", tr.Bindings)
	}
}

func TestExplainPinpointsFailure(t *testing.T) {
	traces, err := Explain(EvalRequest{
		PolicyText: hospitalPolicy,
		FactsText: `
on_duty dr_fred
registered dr_fred joe
excluded dr_fred joe
`,
		Role:      "hospital.treating_doctor(D, P)",
		HeldRoles: []string{"hospital.doctor_on_duty(dr_fred)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	if tr.Fired {
		t.Fatalf("rule fired despite exclusion: %+v", tr)
	}
	if tr.Satisfied != 2 {
		t.Errorf("Satisfied = %d, want 2", tr.Satisfied)
	}
	if !strings.Contains(tr.FailedCond, "excluded") {
		t.Errorf("FailedCond = %q", tr.FailedCond)
	}
}

func TestExplainMissingCredential(t *testing.T) {
	traces, err := Explain(EvalRequest{
		PolicyText: hospitalPolicy,
		FactsText:  `registered dr_ann joe`,
		Role:       "hospital.treating_doctor(D, P)",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	if tr.Fired || tr.Satisfied != 0 {
		t.Errorf("trace = %+v", tr)
	}
	if !strings.Contains(tr.FailedCond, "doctor_on_duty") {
		t.Errorf("FailedCond = %q", tr.FailedCond)
	}
}

func TestExplainWithAppointment(t *testing.T) {
	pol := `ri.visiting <- appt hospital.employed_as_doctor(H) keep [1].`
	traces, err := Explain(EvalRequest{
		PolicyText:   pol,
		Role:         "ri.visiting",
		Appointments: []string{"hospital.employed_as_doctor(st_marys)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !traces[0].Fired {
		t.Errorf("trace = %+v", traces[0])
	}
}

func TestExplainErrors(t *testing.T) {
	if _, err := Explain(EvalRequest{PolicyText: "bad", Role: "a.b"}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := Explain(EvalRequest{PolicyText: `a.b <- env p.`, Role: "zzz"}); err == nil {
		t.Error("bad role spec accepted")
	}
	if _, err := Explain(EvalRequest{PolicyText: `a.b <- env p.`, Role: "a.undefined"}); err == nil {
		t.Error("undefined role accepted")
	}
	if _, err := Explain(EvalRequest{
		PolicyText: `a.b <- env p.`, Role: "a.b", FactsText: "rel (((",
	}); err == nil {
		t.Error("bad facts accepted")
	}
	if _, err := Explain(EvalRequest{
		PolicyText: `a.b <- a.c(X).
a.c(X) <- env p(X).`,
		Role:      "a.b",
		HeldRoles: []string{"a.c(Y)"},
	}); err == nil {
		t.Error("non-ground held role accepted")
	}
	if _, err := Explain(EvalRequest{
		PolicyText:   `a.b <- appt i.k(X) keep [1].`,
		Role:         "a.b",
		Appointments: []string{"i.k(Var)"},
	}); err == nil {
		t.Error("non-ground appointment accepted")
	}
}

func TestExplainClosedWorldPredicate(t *testing.T) {
	// A predicate with no facts is an empty relation: positive use
	// fails, negated use succeeds.
	traces, err := Explain(EvalRequest{
		PolicyText: `a.b <- env ghost.`,
		Role:       "a.b",
	})
	if err != nil {
		t.Fatal(err)
	}
	if traces[0].Fired {
		t.Error("empty relation satisfied a positive condition")
	}
	traces, err = Explain(EvalRequest{
		PolicyText: `a.b <- a.c, !env ghost2(x).
a.c <- env anyone.`,
		Role:      "a.b",
		HeldRoles: []string{"a.c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !traces[0].Fired {
		t.Errorf("negated empty relation failed: %+v", traces[0])
	}
}
