package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sign"
	"repro/internal/store"
)

// Errors a follower's wire handler fails closed with.
var (
	// ErrStale is wrapped into read refusals once the leader has been
	// silent past the staleness bound: a verdict served from state that
	// old could miss a revocation, so the replica stops answering.
	ErrStale = errors.New("replica reads stale past bound (failing closed)")
	// ErrNoLease is wrapped into write refusals when the follower holds
	// no live lease from the leader.
	ErrNoLease = errors.New("leader lease expired (failing closed)")
)

// FollowerConfig configures a follower daemon.
type FollowerConfig struct {
	// Leader is the leader's wire address (host:port). Required.
	Leader string
	// Broker is the follower's local event broker: replicated
	// revocations are published on it so locally-attached edge caches
	// and monitors stay safe. Required.
	Broker *event.Broker
	// Store, when set, receives replicated fact mutations so the
	// follower's environmental predicates answer like the leader's.
	Store *store.Store
	// Caller routes wire calls to the leader (write proxying, lease
	// renewal, and the replicated services' own foreign-credential
	// callbacks). Required; it must resolve Service and every
	// replicated service name to the leader.
	Caller rpc.Caller
	// Register is invoked once per replicated service as it first
	// materialises, with the wrapped handler that serves validation
	// locally and proxies writes. It must not call back into the
	// Follower. Nil is allowed (tests drive Handler directly).
	Register func(name string, h rpc.Handler)
	// StaleAfter bounds how long after the last leader contact
	// validation reads keep being served. Default 10s.
	StaleAfter time.Duration
	// DialTimeout is the per-connection dial budget. Default 2s.
	DialTimeout time.Duration
	// ECRCacheMax bounds each replicated service's validation cache.
	ECRCacheMax int
	// Obs receives the follower metrics; nil disables them.
	Obs *obs.Registry
	// BaseBackoff/MaxBackoff bound the reconnect loop; tests shrink
	// them. Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Follower mirrors a leader's journal into live read-only services. It
// maintains one subscribe_journal stream (reconnecting with backoff and
// resuming from its cursor), applies shipped records both to a mirrored
// durable.State and to the live services, renews the write-proxy lease,
// and serves the replicated services' wire methods: validation locally,
// everything mutating proxied to the leader.
type Follower struct {
	cfg FollowerConfig

	lastContact atomic.Int64 // unix nanos of last stream message; 0 = never
	leaseUntil  atomic.Int64 // unix nanos the lease is valid until
	connected   atomic.Bool
	started     time.Time

	applied      *obs.Counter
	snapshots    *obs.Counter
	applyErrs    *obs.Counter
	readsDenied  *obs.Counter
	writesDenied *obs.Counter
	writesProxy  *obs.Counter
	connects     *obs.Counter
	disconnects  *obs.Counter

	mu         sync.Mutex
	state      *durable.State
	cursor     durable.Cursor
	svcs       map[string]*core.Service
	handlers   map[string]rpc.Handler
	registered map[string]bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFollower builds (without starting) a follower of cfg.Leader.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, fmt.Errorf("replica: follower needs a leader address")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("replica: follower needs a broker")
	}
	if cfg.Caller == nil {
		return nil, fmt.Errorf("replica: follower needs a caller to the leader")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 10 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	f := &Follower{
		cfg:          cfg,
		started:      time.Now(),
		applied:      cfg.Obs.Counter("repl_records_applied_total"),
		snapshots:    cfg.Obs.Counter("repl_snapshots_applied_total"),
		applyErrs:    cfg.Obs.Counter("repl_apply_errors_total"),
		readsDenied:  cfg.Obs.Counter("repl_reads_denied_stale_total"),
		writesDenied: cfg.Obs.Counter("repl_writes_denied_nolease_total"),
		writesProxy:  cfg.Obs.Counter("repl_writes_proxied_total"),
		connects:     cfg.Obs.Counter("repl_connects_total"),
		disconnects:  cfg.Obs.Counter("repl_disconnects_total"),
		state:        durable.NewState(),
		svcs:         make(map[string]*core.Service),
		handlers:     make(map[string]rpc.Handler),
		registered:   make(map[string]bool),
		stop:         make(chan struct{}),
	}
	cfg.Obs.Func("repl_lag_ms", func() uint64 { return uint64(f.Lag().Milliseconds()) })
	cfg.Obs.Func("repl_connected", func() uint64 {
		if f.connected.Load() {
			return 1
		}
		return 0
	})
	return f, nil
}

// Run starts the subscription and lease loops. Call once.
func (f *Follower) Run() {
	f.wg.Add(2)
	go f.runStream()
	go f.leaseLoop()
}

// Close stops the loops and tears the replicated services down.
func (f *Follower) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, svc := range f.svcs {
		svc.Close()
	}
	f.svcs = make(map[string]*core.Service)
	f.handlers = make(map[string]rpc.Handler)
}

// Cursor reports the follower's replication position.
func (f *Follower) Cursor() durable.Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// StateHash digests the mirrored state, for convergence checks against
// the leader's journal.
func (f *Follower) StateHash() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return StateHash(f.state)
}

// Services lists the replicated service names.
func (f *Follower) Services() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.svcs))
	for name := range f.svcs {
		names = append(names, name)
	}
	return names
}

// Connected reports whether the journal stream is currently live.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Lag is the time since the last leader contact (since start when there
// has been none) — the replication staleness reads are gated on.
func (f *Follower) Lag() time.Duration {
	last := f.lastContact.Load()
	if last == 0 {
		return time.Since(f.started)
	}
	return time.Since(time.Unix(0, last))
}

// Leased reports whether the follower currently holds a live write
// lease.
func (f *Follower) Leased() bool {
	return time.Now().UnixNano() < f.leaseUntil.Load()
}

// Handler returns the wire handler for one replicated service —
// validation answered locally (failing closed on staleness), every
// other method proxied to the leader under the lease. It works before
// the service has materialised (refusing reads until it does), so it
// can be registered eagerly.
func (f *Follower) Handler(name string) rpc.Handler {
	return func(method string, body []byte) ([]byte, error) {
		switch method {
		case "validate_rmc", "validate_appt", "validate_batch":
			if err := f.readAllowed(); err != nil {
				f.readsDenied.Inc()
				return nil, err
			}
			f.mu.Lock()
			h := f.handlers[name]
			f.mu.Unlock()
			if h == nil {
				f.readsDenied.Inc()
				return nil, fmt.Errorf("replica: service %q not replicated here", name)
			}
			return h(method, body)
		default:
			if err := f.writeAllowed(); err != nil {
				f.writesDenied.Inc()
				return nil, err
			}
			f.writesProxy.Inc()
			return f.cfg.Caller.Call(name, method, body)
		}
	}
}

// readAllowed gates local validation on replication freshness.
func (f *Follower) readAllowed() error {
	last := f.lastContact.Load()
	if last == 0 {
		return fmt.Errorf("replica: no leader contact since start; %w", ErrStale)
	}
	if age := time.Since(time.Unix(0, last)); age > f.cfg.StaleAfter {
		return fmt.Errorf("replica: leader silent %v (bound %v); %w",
			age.Round(time.Millisecond), f.cfg.StaleAfter, ErrStale)
	}
	return nil
}

// writeAllowed gates write proxying on the lease.
func (f *Follower) writeAllowed() error {
	if !f.Leased() {
		return fmt.Errorf("replica: %w", ErrNoLease)
	}
	return nil
}

// runStream is the connect → subscribe → wait → backoff loop.
func (f *Follower) runStream() {
	defer f.wg.Done()
	backoff := f.cfg.BaseBackoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		st, cli, err := f.subscribe()
		if err != nil {
			if !f.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > f.cfg.MaxBackoff {
				backoff = f.cfg.MaxBackoff
			}
			continue
		}
		backoff = f.cfg.BaseBackoff
		f.connects.Inc()
		f.connected.Store(true)
		select {
		case <-st.Done():
			f.connected.Store(false)
			f.disconnects.Inc()
			cli.Close() //nolint:errcheck
		case <-f.stop:
			cli.Close() //nolint:errcheck
			f.connected.Store(false)
			return
		}
	}
}

// subscribe dials a dedicated connection and opens the journal stream
// from the current cursor.
func (f *Follower) subscribe() (*rpc.ClientStream, *rpc.TCPClient, error) {
	cli, err := rpc.DialTCP(f.cfg.Leader, f.cfg.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	f.mu.Lock()
	cur := f.cursor
	f.mu.Unlock()
	body, err := json.Marshal(cur)
	if err != nil {
		cli.Close() //nolint:errcheck
		return nil, nil, err
	}
	st, err := cli.Stream(Service, MethodSubscribe, body, f.onEvent)
	if err != nil {
		cli.Close() //nolint:errcheck
		return nil, nil, err
	}
	return st, cli, nil
}

func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.stop:
		return false
	case <-t.C:
		return true
	}
}

// onEvent consumes one stream message.
func (f *Follower) onEvent(b []byte) {
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		f.applyErrs.Inc()
		return
	}
	f.lastContact.Store(time.Now().UnixNano())
	switch m.Kind {
	case KindHello, KindHB:
		f.mu.Lock()
		f.cursor = m.Cursor
		f.mu.Unlock()
	case KindSnapshot:
		f.applySnapshot(m)
	case KindRecs:
		f.applyRecs(m)
	}
}

// applyRecs folds shipped records into the mirror and the live services.
func (f *Follower) applyRecs(m Message) {
	f.mu.Lock()
	var evs []event.Event
	for _, r := range m.Recs {
		f.state.Apply(r)
		evs = append(evs, f.applyLive(r)...)
	}
	f.cursor = m.Cursor
	f.mu.Unlock()
	f.applied.Add(uint64(len(m.Recs)))
	for _, ev := range evs {
		f.cfg.Broker.Publish(ev) //nolint:errcheck // fire-and-forget fan-out
	}
}

// applySnapshot discards local state for the shipped one: services are
// rebuilt from scratch, the fact store is reconciled, and — because a
// reset means an unknown stretch of history was skipped — a revocation
// event is republished for every revoked entry, so follower-attached
// edge caches cannot keep serving a verdict whose revocation fell into
// the gap.
func (f *Follower) applySnapshot(m Message) {
	st := m.State
	if st == nil {
		st = durable.NewState()
	}
	f.mu.Lock()
	for _, svc := range f.svcs {
		svc.Close()
	}
	f.svcs = make(map[string]*core.Service)
	f.handlers = make(map[string]rpc.Handler)
	oldFacts := f.state.Facts
	f.state = st
	for name := range st.Services {
		f.materializeLocked(name)
	}
	if f.cfg.Store != nil {
		for key, fact := range oldFacts {
			if _, ok := st.Facts[key]; !ok {
				f.cfg.Store.Retract(fact.Relation, fact.Tuple...) //nolint:errcheck
			}
		}
		for _, fact := range st.Facts {
			f.cfg.Store.Assert(fact.Relation, fact.Tuple...) //nolint:errcheck
		}
	}
	f.cursor = m.Cursor
	var evs []event.Event
	now := time.Now()
	for name, ss := range st.Services {
		for serial, cr := range ss.CRs {
			if cr.Revoked {
				evs = append(evs, crRevokedEvent(name, serial, cr.Reason, now))
			}
		}
		for _, a := range ss.Appts {
			if a.Revoked && a.Cert.Issuer != "" {
				evs = append(evs, apptRevokedEvent(a.Cert.Key(), a.Reason, now))
			}
		}
	}
	f.mu.Unlock()
	f.snapshots.Inc()
	for _, ev := range evs {
		f.cfg.Broker.Publish(ev) //nolint:errcheck
	}
}

// applyLive applies one record to the live services (the mirror has
// already been updated, so it is the source of truth for the entry's
// final shape). Returns events the caller must publish after unlocking.
func (f *Follower) applyLive(r durable.Record) []event.Event {
	switch r.Op {
	case durable.OpKeys:
		// New signing secrets: rebuild the service so certificates
		// verify under the restored ring.
		f.materializeLocked(r.Service)
	case durable.OpCRIssue, durable.OpCRRevoke, durable.OpApptIssue, durable.OpApptRevoke:
		// Credential and appointment mutations replay through the same
		// apply function the leader's sequencer runs (ApplyReplicated →
		// applyMutState): no parallel copy of the mutation semantics.
		// Events come back for the caller to publish in record order —
		// a revocation always yields one, even when the record was
		// unknown here (a tombstone is installed), so follower-attached
		// edge caches drop the credential regardless.
		svc := f.serviceLocked(r.Service)
		if svc == nil {
			return nil
		}
		if r.Op == durable.OpApptIssue && r.Appt == nil {
			// Old journals shipped the certificate only in the mirror;
			// fall back to it.
			if ss := f.state.Services[r.Service]; ss != nil {
				if a := ss.Appts[r.Serial]; a != nil && a.Cert.Issuer != "" {
					svc.RestoreAppointment(a.Cert, a.Revoked)
				}
			}
			return nil
		}
		evs, err := svc.ApplyReplicated(r)
		if err != nil {
			f.applyErrs.Inc()
		}
		if r.Op == durable.OpApptRevoke && len(evs) == 0 {
			// The live service had nothing to revoke (tombstone-only
			// entry, or already revoked); publish from the mirror so
			// edge caches drop it.
			if ss := f.state.Services[r.Service]; ss != nil {
				if a := ss.Appts[r.Serial]; a != nil && a.Cert.Issuer != "" {
					return []event.Event{apptRevokedEvent(a.Cert.Key(), r.Reason, time.Now())}
				}
			}
		}
		return evs
	case durable.OpFactAssert:
		if f.cfg.Store != nil {
			f.cfg.Store.Assert(r.Relation, r.Tuple...) //nolint:errcheck
		}
	case durable.OpFactRetract:
		if f.cfg.Store != nil {
			f.cfg.Store.Retract(r.Relation, r.Tuple...) //nolint:errcheck
		}
	}
	return nil
}

// serviceLocked returns the live service for name, materialising it
// from the mirror on first sight. Callers hold f.mu.
func (f *Follower) serviceLocked(name string) *core.Service {
	if svc, ok := f.svcs[name]; ok {
		return svc
	}
	f.materializeLocked(name)
	return f.svcs[name]
}

// materializeLocked (re)builds one live read-only service from the
// mirrored state: ring restored from the journaled secrets, every CR
// and appointment re-installed. Callers hold f.mu.
func (f *Follower) materializeLocked(name string) {
	if old, ok := f.svcs[name]; ok {
		old.Close()
		delete(f.svcs, name)
		delete(f.handlers, name)
	}
	ss := f.state.Services[name]
	if ss == nil {
		return
	}
	var ring *sign.KeyRing
	if len(ss.Secrets) > 0 {
		var err error
		ring, err = sign.NewKeyRingFromSecrets(ss.Secrets, ss.Retain, nil)
		if err != nil {
			f.applyErrs.Inc()
			return
		}
	}
	svc, err := core.NewService(core.Config{
		Name:             name,
		Broker:           f.cfg.Broker,
		Caller:           f.cfg.Caller,
		KeyRing:          ring,
		ReadOnly:         true,
		CacheValidations: true,
		CacheMaxEntries:  f.cfg.ECRCacheMax,
		Obs:              f.cfg.Obs,
	})
	if err != nil {
		f.applyErrs.Inc()
		return
	}
	for serial, cr := range ss.CRs {
		if rerr := svc.RestoreCR(serial, cr.Subject, cr.Holder, cr.Revoked, cr.Reason); rerr != nil {
			f.applyErrs.Inc()
		}
	}
	for _, a := range ss.Appts {
		if a.Cert.Issuer != "" {
			svc.RestoreAppointment(a.Cert, a.Revoked)
		}
	}
	f.svcs[name] = svc
	f.handlers[name] = svc.Handler()
	if f.cfg.Register != nil && !f.registered[name] {
		f.registered[name] = true
		f.cfg.Register(name, f.Handler(name))
	}
}

// leaseLoop renews the write-proxy lease at a third of its TTL,
// backing off while the leader is unreachable (during which the lease
// simply expires and writes fail closed).
func (f *Follower) leaseLoop() {
	defer f.wg.Done()
	period := f.cfg.BaseBackoff
	for {
		ttl, err := f.renewLease()
		if err != nil {
			if period *= 2; period > f.cfg.MaxBackoff {
				period = f.cfg.MaxBackoff
			}
		} else {
			period = ttl / 3
			if period < 10*time.Millisecond {
				period = 10 * time.Millisecond
			}
		}
		if !f.sleep(period) {
			return
		}
	}
}

// renewLease asks the leader for a fresh lease and arms leaseUntil.
func (f *Follower) renewLease() (time.Duration, error) {
	out, err := f.cfg.Caller.Call(Service, MethodLease, []byte(`{}`))
	if err != nil {
		return 0, err
	}
	var lr LeaseResponse
	if err := json.Unmarshal(out, &lr); err != nil {
		return 0, err
	}
	ttl := time.Duration(lr.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		return 0, fmt.Errorf("replica: leader granted a zero lease")
	}
	f.leaseUntil.Store(time.Now().Add(ttl).UnixNano())
	return ttl, nil
}

// crRevokedEvent is the revocation announcement the follower publishes
// when it applies a revocation the live service could not (or when a
// snapshot reset may have skipped the original event).
func crRevokedEvent(service string, serial uint64, reason string, at time.Time) event.Event {
	ref := cert.CRR{Issuer: service, Serial: serial}
	return event.Event{
		Topic:   core.TopicCR(ref),
		Kind:    event.KindRevoked,
		Subject: ref.String(),
		Reason:  reason,
		At:      at,
	}
}

func apptRevokedEvent(key, reason string, at time.Time) event.Event {
	return event.Event{
		Topic:   core.TopicAppt(key),
		Kind:    event.KindRevoked,
		Subject: key,
		Reason:  reason,
		At:      at,
	}
}
