package replica

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/sign"
)

// testLeader is a journaling oasisd-in-miniature: one service, a
// shipper, a wire listener.
type testLeader struct {
	dir    string
	log    *durable.Log
	broker *event.Broker
	svc    *core.Service
	ship   *Shipper
	srv    *rpc.TCPServer
	addr   string
}

func startTestLeader(t *testing.T, leaseTTL time.Duration) *testLeader {
	t.Helper()
	dir := t.TempDir()
	dlog, err := durable.Open(durable.Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	broker := event.NewBroker()
	svc, err := core.NewService(core.Config{
		Name:    "login",
		Policy:  policy.MustParse(`login.user <- env ok.`),
		Broker:  broker,
		Journal: dlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	secrets, retain := svc.ExportKeys()
	if err := dlog.KeysInstalled("login", retain, secrets); err != nil {
		t.Fatal(err)
	}
	ship := NewShipper(ShipperConfig{Log: dlog, Node: "L", LeaseTTL: leaseTTL, Heartbeat: 20 * time.Millisecond})
	srv := rpc.NewTCPServer()
	ship.Register(srv)
	srv.Register("login", svc.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	tl := &testLeader{dir: dir, log: dlog, broker: broker, svc: svc, ship: ship, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() {
		tl.srv.Close()
		tl.svc.Close()
		tl.log.Close() //nolint:errcheck
		tl.broker.Close()
	})
	return tl
}

func (tl *testLeader) activate(t *testing.T) (cert.RMC, string) {
	t.Helper()
	sess, err := core.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := tl.svc.Activate(sess.PrincipalID(), names.MustRole(names.MustRoleName("login", "user", 0)), core.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	return rmc, sess.PrincipalID()
}

func signRing(ss *durable.ServiceState) (*sign.KeyRing, error) {
	return sign.NewKeyRingFromSecrets(ss.Secrets, ss.Retain, nil)
}

func startTestFollower(t *testing.T, leaderAddr string, staleAfter time.Duration) *Follower {
	t.Helper()
	broker := event.NewBroker()
	pool := rpc.NewDirectoryPool(2*time.Second, 1)
	pool.Add(Service, leaderAddr)
	pool.Add("login", leaderAddr)
	f, err := NewFollower(FollowerConfig{
		Leader:      leaderAddr,
		Broker:      broker,
		Caller:      pool,
		StaleAfter:  staleAfter,
		DialTimeout: time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Run()
	t.Cleanup(func() {
		f.Close()
		pool.Close()
		broker.Close()
	})
	return f
}

// waitConverged polls until the follower's mirrored state equals a full
// replay of the leader's journal.
func waitConverged(t *testing.T, tl *testLeader, f *Follower) {
	t.Helper()
	if err := tl.log.Sync(); err != nil {
		t.Fatal(err)
	}
	disk, err := durable.ReadState(tl.dir)
	if err != nil {
		t.Fatal(err)
	}
	want := StateHash(disk)
	deadline := time.Now().Add(10 * time.Second)
	for f.StateHash() != want {
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %s want %s (cursor %v)", f.StateHash(), want, f.Cursor())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func validateOn(t *testing.T, h rpc.Handler, rmc cert.RMC, principal string) (bool, error) {
	t.Helper()
	body, err := json.Marshal(struct {
		RMC       cert.RMC `json:"rmc"`
		Principal string   `json:"principal"`
	}{rmc, principal})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h("validate_rmc", body)
	if err != nil {
		return false, err
	}
	var resp struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Valid, nil
}

// TestFollowerServesReadsAndProxiesWrites is the end-to-end follower
// story over a real wire: replicate issued credentials, answer
// validation locally (correctly, including replicated revocations),
// proxy a revoke to the leader under the lease, and fail closed — reads
// past the staleness bound, writes past the lease — once the leader is
// gone.
func TestFollowerServesReadsAndProxiesWrites(t *testing.T) {
	tl := startTestLeader(t, 300*time.Millisecond)
	rmcKeep, pKeep := tl.activate(t)
	rmcGone, pGone := tl.activate(t)
	if !tl.svc.Revoke(rmcGone.Ref.Serial, "compromised") {
		t.Fatal("leader revoke failed")
	}

	f := startTestFollower(t, tl.addr, 600*time.Millisecond)
	waitConverged(t, tl, f)

	h := f.Handler("login")
	if valid, err := validateOn(t, h, rmcKeep, pKeep); err != nil || !valid {
		t.Fatalf("live credential on follower: valid=%v err=%v", valid, err)
	}
	if valid, err := validateOn(t, h, rmcGone, pGone); err != nil || valid {
		t.Fatalf("revoked credential on follower: valid=%v err=%v, want invalid", valid, err)
	}

	// A write through the follower is proxied to the leader...
	deadline := time.Now().Add(5 * time.Second)
	for !f.Leased() {
		if time.Now().After(deadline) {
			t.Fatal("follower never acquired a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	body, err := json.Marshal(core.RemoteRevokeRequest{Serial: rmcKeep.Ref.Serial, Reason: "via replica"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h("revoke", body)
	if err != nil {
		t.Fatalf("proxied revoke: %v", err)
	}
	var rr core.RemoteRevokeResponse
	if err := json.Unmarshal(out, &rr); err != nil || !rr.Revoked {
		t.Fatalf("proxied revoke = %s err=%v, want revoked", out, err)
	}
	// ...and the revocation replicates back: the follower denies it too.
	waitConverged(t, tl, f)
	if valid, err := validateOn(t, h, rmcKeep, pKeep); err != nil || valid {
		t.Fatalf("credential revoked via proxy still valid=%v err=%v on follower", valid, err)
	}

	// Sever the leader. Reads keep serving inside the staleness bound,
	// then fail closed; writes fail closed once the lease expires.
	tl.srv.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, err := validateOn(t, h, rmcGone, pGone)
		if errors.Is(err, ErrStale) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads never failed closed after the leader died")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for {
		_, err := h("revoke", body)
		if errors.Is(err, ErrNoLease) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes never failed closed after the leader died (last err %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFollowerResumesAcrossLeaderRestartAndRotation kills the leader
// process-style (listener and all), restarts it on the journal
// directory (epoch advance), compacts (rotation + prune), and asserts
// the follower reconnects, resets where it must, and converges — with
// every pre- and post-restart revocation enforced.
func TestFollowerResumesAcrossLeaderRestartAndRotation(t *testing.T) {
	tl := startTestLeader(t, 300*time.Millisecond)
	rmc1, p1 := tl.activate(t)
	f := startTestFollower(t, tl.addr, 5*time.Second)
	waitConverged(t, tl, f)

	// Leader "crash": sever and close the journal.
	tl.srv.Close()
	tl.svc.Close()
	if err := tl.log.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory and the same address (the follower
	// keeps dialing the address it was configured with, exactly like a
	// daemon restart behind a stable endpoint).
	dlog, err := durable.Open(durable.Options{Dir: tl.dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := dlog.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	ss := recovered.Services["login"]
	if ss == nil || len(ss.Secrets) == 0 {
		t.Fatal("restart lost the journaled key ring")
	}
	ring, err := signRing(ss)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.NewService(core.Config{
		Name:    "login",
		Policy:  policy.MustParse(`login.user <- env ok.`),
		Broker:  tl.broker,
		Journal: dlog,
		KeyRing: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	for serial, cr := range ss.CRs {
		if err := svc2.RestoreCR(serial, cr.Subject, cr.Holder, cr.Revoked, cr.Reason); err != nil {
			t.Fatal(err)
		}
	}
	ship2 := NewShipper(ShipperConfig{Log: dlog, Node: "L", LeaseTTL: 300 * time.Millisecond, Heartbeat: 20 * time.Millisecond})
	srv2 := rpc.NewTCPServer()
	ship2.Register(srv2)
	srv2.Register("login", svc2.Handler())
	ln, err := net.Listen("tcp", tl.addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", tl.addr, err)
	}
	go srv2.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		srv2.Close()
		svc2.Close()
		dlog.Close() //nolint:errcheck
	})
	tl.log, tl.svc, tl.srv = dlog, svc2, srv2

	// Post-restart history: revoke the pre-restart credential, rotate
	// the journal, issue more.
	if !svc2.Revoke(rmc1.Ref.Serial, "post-restart revocation") {
		t.Fatal("restarted leader lost the credential record")
	}
	if err := dlog.Compact(); err != nil {
		t.Fatal(err)
	}
	rmc2, p2 := tl.activate(t)

	waitConverged(t, tl, f)
	h := f.Handler("login")
	if valid, err := validateOn(t, h, rmc1, p1); err != nil || valid {
		t.Fatalf("pre-restart credential: valid=%v err=%v, want revoked on follower", valid, err)
	}
	if valid, err := validateOn(t, h, rmc2, p2); err != nil || !valid {
		t.Fatalf("post-restart credential: valid=%v err=%v, want valid on follower", valid, err)
	}
}
