package replica

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// serialShards mirrors the per-serial shard count of the core sequencer
// (crShards). The ordering guarantee is per shard: mutations on the same
// serial shard flow through one apply loop, so their journal, broker and
// ship orders must agree; distinct shards may interleave freely.
const serialShards = 16

// revokeRecorder collects the credential-revocation serials a broker
// publishes, in publish order. Broker taps run synchronously in the
// publishing goroutine, so the recorded order is the true publish order.
type revokeRecorder struct {
	mu      sync.Mutex
	serials []uint64
}

func (r *revokeRecorder) attach(b *event.Broker) func() {
	return b.Tap(func(ev event.Event) {
		if ev.Kind != event.KindRevoked || !strings.HasPrefix(ev.Topic, "cr/") {
			return
		}
		_, num, ok := strings.Cut(ev.Subject, "#")
		if !ok {
			return
		}
		serial, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			return
		}
		r.mu.Lock()
		r.serials = append(r.serials, serial)
		r.mu.Unlock()
	})
}

func (r *revokeRecorder) snapshot() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.serials...)
}

// wait polls until the recorder has seen at least n distinct serials.
func (r *revokeRecorder) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(dedupe(r.snapshot())) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder stuck at %d distinct revokes, want %d", len(dedupe(r.snapshot())), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dedupe keeps the first occurrence of each serial. A follower snapshot
// reset republishes every revoked entry it already knows (the edge-cache
// fail-safe), so later duplicates are expected; the first delivery of
// each serial is the one the ordering guarantee covers.
func dedupe(serials []uint64) []uint64 {
	seen := make(map[uint64]bool, len(serials))
	out := serials[:0:0]
	for _, s := range serials {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// byShard splits a serial sequence into its per-shard subsequences.
func byShard(serials []uint64) [][]uint64 {
	out := make([][]uint64, serialShards)
	for _, s := range serials {
		sh := s % serialShards
		out[sh] = append(out[sh], s)
	}
	return out
}

func sameOrder(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// journalRevokeOrder replays every surviving journal segment oldest to
// newest and returns the credential-revoke serials in on-disk order —
// the order recovery replays, the shipper ships, and a follower applies.
func journalRevokeOrder(t *testing.T, l *durable.Log) []uint64 {
	t.Helper()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	oldest, ok, err := durable.OldestSegment(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return nil
	}
	active, _ := l.ActiveGen()
	var out []uint64
	for gen := oldest; gen <= active; gen++ {
		var off int64
		for {
			recs, next, err := durable.ReadSegmentAt(l.Dir(), gen, off)
			if err != nil {
				if errors.Is(err, durable.ErrNoSegment) {
					break
				}
				t.Fatalf("read gen %d: %v", gen, err)
			}
			for _, r := range recs {
				if r.Op == durable.OpCRRevoke {
					out = append(out, r.Serial)
				}
			}
			if next == off {
				break
			}
			off = next
		}
	}
	return out
}

// churn issues and immediately revokes credentials from workers
// concurrent goroutines, per pairs each, and returns the number of
// revocations performed.
func churn(t *testing.T, svc *core.Service, workers, per int, tag string) int {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rmc, err := svc.Activate(fmt.Sprintf("%s-w%d-%d", tag, g, i),
					names.MustRole(names.MustRoleName("login", "user", 0)), core.Presented{})
				if err != nil {
					t.Error(err)
					return
				}
				if !svc.Revoke(rmc.Ref.Serial, "churn") {
					t.Errorf("revoke %d failed", rmc.Ref.Serial)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return workers * per
}

// TestOrderingInvariantAcrossCrashAndReset is the sequencer's end-to-end
// ordering property: for any concurrent interleaving of issue/revoke on
// one serial shard, the journal's on-disk record order, the leader
// broker's publish order, and the replication ship/apply order seen by a
// live follower are identical — and stay identical across a leader
// crash-recovery (journal reopen, state replay) and the follower
// snapshot reset the restart forces (epoch advance).
func TestOrderingInvariantAcrossCrashAndReset(t *testing.T) {
	tl := startTestLeader(t, 2*time.Second)
	leader := &revokeRecorder{}
	defer leader.attach(tl.broker)()

	// Follower with a tapped broker: its publish order is the ship/apply
	// order of the replicated stream.
	follower := &revokeRecorder{}
	fbroker := event.NewBroker()
	detach := follower.attach(fbroker)
	defer detach()
	pool := rpc.NewDirectoryPool(2*time.Second, 1)
	pool.Add(Service, tl.addr)
	f, err := NewFollower(FollowerConfig{
		Leader:      tl.addr,
		Broker:      fbroker,
		Caller:      pool,
		StaleAfter:  5 * time.Second,
		DialTimeout: time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Run()
	defer func() {
		f.Close()
		pool.Close()
		fbroker.Close()
	}()
	waitConverged(t, tl, f)

	// Phase A: concurrent churn against the first leader incarnation.
	total := churn(t, tl.svc, 8, 25, "a")

	waitConverged(t, tl, f)
	// Convergence is mirror-state equality; event publication trails it by
	// a hair (applyRecs publishes after updating the mirror). Wait until
	// every phase-A revocation has actually been delivered before cutting
	// the wire, so the crash cannot race the tail of the publish loop.
	follower.wait(t, total)

	// Leader crash: sever the wire and close the journal mid-history.
	tl.srv.Close()
	tl.svc.Close()
	if err := tl.log.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover on the same directory: replay the journal into a fresh
	// service (same broker, so the publish-order tap spans the crash).
	dlog, err := durable.Open(durable.Options{Dir: tl.dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := dlog.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	ss := recovered.Services["login"]
	if ss == nil {
		t.Fatal("recovery lost the service state")
	}
	ring, err := signRing(ss)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.NewService(core.Config{
		Name:    "login",
		Policy:  policy.MustParse(`login.user <- env ok.`),
		Broker:  tl.broker,
		Journal: dlog,
		KeyRing: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc2.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	for serial, cr := range ss.CRs {
		if err := svc2.RestoreCR(serial, cr.Subject, cr.Holder, cr.Revoked, cr.Reason); err != nil {
			t.Fatal(err)
		}
	}
	ship2 := NewShipper(ShipperConfig{Log: dlog, Node: "L2", LeaseTTL: 2 * time.Second, Heartbeat: 20 * time.Millisecond})
	srv2 := rpc.NewTCPServer()
	ship2.Register(srv2)
	srv2.Register("login", svc2.Handler())
	ln, err := net.Listen("tcp", tl.addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", tl.addr, err)
	}
	go srv2.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		srv2.Close()
		svc2.Close()
		dlog.Close() //nolint:errcheck
	})
	tl.log, tl.svc, tl.srv = dlog, svc2, srv2

	// Let the follower re-attach first: the epoch advanced, so its cursor
	// is rejected and it resets from a snapshot. Converging here means the
	// snapshot diff is empty (it had already applied everything), so every
	// phase-B event it publishes comes from the live stream, in ship
	// order.
	waitConverged(t, tl, f)

	// Phase B: concurrent churn against the recovered leader.
	total += churn(t, tl.svc, 8, 25, "b")

	waitConverged(t, tl, f)
	follower.wait(t, total)

	// Gather the three orders. The follower's raw stream contains the
	// snapshot-reset replay duplicates; first occurrences are the live
	// stream deliveries the guarantee covers.
	journalOrder := journalRevokeOrder(t, tl.log)
	leaderOrder := leader.snapshot()
	followerOrder := dedupe(follower.snapshot())

	if len(journalOrder) != total {
		t.Fatalf("journal has %d revokes, want %d", len(journalOrder), total)
	}
	if len(leaderOrder) != total {
		t.Fatalf("leader broker published %d revokes, want %d", len(leaderOrder), total)
	}
	if len(followerOrder) != total {
		t.Fatalf("follower delivered %d distinct revokes, want %d", len(followerOrder), total)
	}

	// Journal order == broker publish order, per serial shard.
	js, ls := byShard(journalOrder), byShard(leaderOrder)
	for sh := range js {
		if !sameOrder(js[sh], ls[sh]) {
			t.Errorf("shard %d: journal order %v != leader publish order %v", sh, js[sh], ls[sh])
		}
	}
	// Ship/apply order == journal order, globally: the follower applies
	// the very bytes the journal committed, segment by segment.
	if !sameOrder(journalOrder, followerOrder) {
		t.Errorf("follower apply order diverges from journal order:\n journal  %v\n follower %v", journalOrder, followerOrder)
	}
}
