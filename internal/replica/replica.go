// Package replica replicates an oasisd journal to follower daemons over
// the OW2 wire, so a domain can scale validation reads and survive the
// loss of its issuing node without losing a single revocation.
//
// The model is primary-copy with journal shipping. Every oasisd that
// journals (internal/durable) can serve its journal as a server stream:
// a follower subscribes with a (journal id, epoch, generation, offset)
// cursor, catches up — from the newest compacting snapshot when its
// cursor no longer addresses live history — and then tail-follows
// committed frames as the leader's committer writes them. Because the
// shipper reads the same on-disk bytes recovery would replay, a
// follower can never observe a record the leader has not committed: the
// replication stream is exactly the crash-recovery story, run
// continuously over the wire.
//
// The follower applies frames to a mirrored durable.State and into live
// read-only core Services (Config.ReadOnly), so validation callbacks and
// ECR reads are answered locally while every mutating method is proxied
// to the leader — gated by a lease the follower renews in band. An
// expired lease fails writes closed; reads fail closed once the leader
// has been silent past the staleness bound (the replica-level analog of
// the ECR stale-grace window).
package replica

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/durable"
)

// Service is the in-band replication service name, registered on the
// leader's wire listener next to the ordinary OASIS services. The
// leading underscore keeps it out of the policy namespace.
const Service = "_repl"

// Wire methods of the replication service.
const (
	// MethodSubscribe is the journal server stream: snapshot catch-up at
	// a cursor, then tail-follow of committed frames.
	MethodSubscribe = "subscribe_journal"
	// MethodLease grants/renews the follower's write-proxy lease.
	MethodLease = "lease"
	// MethodStatus reports the leader's journal position, for operators
	// and tests.
	MethodStatus = "status"
)

// Message kinds carried on the subscribe_journal stream.
const (
	// KindHello acknowledges a resumed cursor: the follower's position
	// was accepted verbatim, no catch-up needed.
	KindHello = "hello"
	// KindSnapshot carries a full state; the follower must discard what
	// it has and adopt it, resuming at the accompanying cursor.
	KindSnapshot = "snapshot"
	// KindRecs carries committed journal records in order; the cursor is
	// the position just past them.
	KindRecs = "recs"
	// KindHB is a liveness tick while the follower is caught up; it
	// bounds the follower's read staleness.
	KindHB = "hb"
)

// Message is one frame on the subscribe_journal stream.
type Message struct {
	Kind   string           `json:"kind"`
	Cursor durable.Cursor   `json:"cursor"`
	State  *durable.State   `json:"state,omitempty"`
	Recs   []durable.Record `json:"recs,omitempty"`
}

// LeaseResponse answers MethodLease: the leader's identity and the TTL
// the follower may proxy writes under before renewing.
type LeaseResponse struct {
	Node      string `json:"node,omitempty"`
	JournalID string `json:"journal_id"`
	Epoch     uint64 `json:"epoch"`
	TTLMillis int64  `json:"ttl_ms"`
}

// StatusResponse answers MethodStatus.
type StatusResponse struct {
	Node        string `json:"node,omitempty"`
	JournalID   string `json:"journal_id"`
	Epoch       uint64 `json:"epoch"`
	Gen         uint64 `json:"gen"`
	Size        int64  `json:"size"`
	Subscribers int64  `json:"subscribers"`
}

// StateHash is a canonical digest of a replicated state, used to check
// leader/follower convergence (encoding/json emits map keys sorted, so
// equal states hash equal).
func StateHash(st *durable.State) string {
	b, err := json.Marshal(st)
	if err != nil {
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
