package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
)

func openLog(t *testing.T, dir string) *durable.Log {
	t.Helper()
	l, err := durable.Open(durable.Options{Dir: dir, GroupWindow: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// applier models the follower side of the subscribe_journal protocol
// without a network: it applies stream messages to a mirrored state and
// can sever the stream after a configured number of messages (the
// injected kill point).
type applier struct {
	mu        sync.Mutex
	state     *durable.State
	cur       durable.Cursor
	snapshots int
	seen      int
	killAfter int // 0 = never; >0 = fail send seen > killAfter
	killed    bool
}

var errInjectedKill = errors.New("injected stream kill")

func (a *applier) send(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen++
	if a.killAfter > 0 && a.seen > a.killAfter {
		a.killed = true
		return errInjectedKill
	}
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	switch m.Kind {
	case KindSnapshot:
		st := m.State
		if st == nil {
			st = durable.NewState()
		}
		a.state = st
		a.snapshots++
	case KindRecs:
		for _, r := range m.Recs {
			a.state.Apply(r)
		}
	}
	a.cur = m.Cursor
	return nil
}

func (a *applier) cursor() durable.Cursor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

func (a *applier) arm(kill int) {
	a.mu.Lock()
	a.seen, a.killAfter, a.killed = 0, kill, false
	a.mu.Unlock()
}

func (a *applier) hash() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return StateHash(a.state)
}

// subscribeApplier opens a direct (in-process) subscription for a.
func subscribeApplier(t *testing.T, s *Shipper, a *applier, cur durable.Cursor) func() {
	t.Helper()
	body, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := s.HandleSubscribe(MethodSubscribe, body, a.send)
	if err != nil {
		t.Fatal(err)
	}
	return stop
}

// waitCaughtUp polls until a's cursor reaches the log's committed end.
func waitCaughtUp(t *testing.T, l *durable.Log, a *applier) {
	t.Helper()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gen, size := l.ActiveGen()
		c := a.cursor()
		if c.ID == l.ID() && c.Epoch == l.Epoch() && c.Gen == gen && c.Off == size {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: cursor %v, committed %d@%d", c, gen, size)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitSettled polls until the stream was either killed or caught up.
func waitSettled(t *testing.T, l *durable.Log, a *applier) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.mu.Lock()
		killed := a.killed
		c := a.cur
		a.mu.Unlock()
		gen, size := l.ActiveGen()
		if killed || (c.ID == l.ID() && c.Epoch == l.Epoch() && c.Gen == gen && c.Off == size) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("stream neither killed nor caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitSubscribers(t *testing.T, s *Shipper, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber count stuck at %d, want %d", s.Subscribers(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkConverged asserts the applier's mirror equals a full replay of
// the leader's on-disk chain — the replication invariant.
func checkConverged(t *testing.T, dir string, a *applier, stage string) {
	t.Helper()
	disk, err := durable.ReadState(dir)
	if err != nil {
		t.Fatalf("%s: readState: %v", stage, err)
	}
	if got, want := a.hash(), StateHash(disk); got != want {
		t.Fatalf("%s: follower diverged from leader journal:\n follower %s\n leader   %s", stage, got, want)
	}
}

// TestShipperKillPointsConverge severs the journal stream after every
// possible message count across bursts of appends and compactions
// (generation rotations), resumes from the surviving cursor each time,
// and asserts the follower-side state always converges to a full replay
// of the leader's journal — no record lost, none double-applied (Apply
// idempotency makes a double visible as divergence after revocation
// interleavings).
func TestShipperKillPointsConverge(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	defer l.Close() //nolint:errcheck
	ship := NewShipper(ShipperConfig{Log: l, Heartbeat: 5 * time.Millisecond})
	a := &applier{state: durable.NewState()}

	serial := uint64(0)
	burst := func(n int) {
		for i := 0; i < n; i++ {
			serial++
			l.CRIssued("svc", serial, "svc.user", fmt.Sprintf("p%d", serial))
			if serial%3 == 0 {
				l.CRRevoked("svc", serial, "churn")
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	// Fresh subscribe from a zero cursor must arrive via snapshot.
	stop := subscribeApplier(t, ship, a, durable.Cursor{})
	burst(10)
	waitCaughtUp(t, l, a)
	if a.snapshots == 0 {
		t.Fatal("fresh subscription did not start from a snapshot")
	}
	checkConverged(t, dir, a, "initial catch-up")
	stop()
	waitSubscribers(t, ship, 0)

	for kill := 1; kill <= 12; kill++ {
		burst(4)
		if kill%3 == 0 {
			// Rotate mid-sequence: the cursor must follow wal-* rotation
			// (and survive its own generation being pruned).
			if err := l.Compact(); err != nil {
				t.Fatalf("compact at kill point %d: %v", kill, err)
			}
		}
		a.arm(kill)
		stop := subscribeApplier(t, ship, a, a.cursor())
		waitSettled(t, l, a)
		stop()
		waitSubscribers(t, ship, 0)

		// Resume from whatever cursor survived the kill; convergence is
		// required no matter where the stream died.
		a.arm(0)
		stop = subscribeApplier(t, ship, a, a.cursor())
		waitCaughtUp(t, l, a)
		checkConverged(t, dir, a, fmt.Sprintf("kill point %d", kill))
		stop()
		waitSubscribers(t, ship, 0)
	}
}

// TestShipperResetsOnLeaderRestart reopens the journal (epoch advance —
// recovery may have truncated a torn tail the follower already consumed)
// and asserts a resumed stale-epoch cursor is answered with a snapshot
// reset, converging to the restarted leader's state.
func TestShipperResetsOnLeaderRestart(t *testing.T) {
	dir := t.TempDir()
	l1 := openLog(t, dir)
	ship1 := NewShipper(ShipperConfig{Log: l1, Heartbeat: 5 * time.Millisecond})
	a := &applier{state: durable.NewState()}

	for s := uint64(1); s <= 8; s++ {
		l1.CRIssued("svc", s, "svc.user", "holder")
	}
	stop := subscribeApplier(t, ship1, a, durable.Cursor{})
	waitCaughtUp(t, l1, a)
	stop()
	waitSubscribers(t, ship1, 0)
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir)
	defer l2.Close() //nolint:errcheck
	l2.CRRevoked("svc", 3, "post-restart")
	ship2 := NewShipper(ShipperConfig{Log: l2, Heartbeat: 5 * time.Millisecond})

	before := a.snapshots
	stop = subscribeApplier(t, ship2, a, a.cursor())
	waitCaughtUp(t, l2, a)
	defer stop()
	if a.snapshots <= before {
		t.Fatal("stale-epoch cursor was resumed verbatim; want snapshot reset")
	}
	checkConverged(t, dir, a, "after leader restart")
}

// TestShipperLeaseAndStatus pins the plain-method answers.
func TestShipperLeaseAndStatus(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	defer l.Close() //nolint:errcheck
	ship := NewShipper(ShipperConfig{Log: l, Node: "L1", LeaseTTL: 250 * time.Millisecond})

	out, err := ship.HandleCall(MethodLease, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := json.Unmarshal(out, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.TTLMillis != 250 || lr.JournalID != l.ID() || lr.Epoch != l.Epoch() || lr.Node != "L1" {
		t.Fatalf("lease = %+v", lr)
	}

	out, err = ship.HandleCall(MethodStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.JournalID != l.ID() || st.Gen == 0 {
		t.Fatalf("status = %+v", st)
	}
	if _, err := ship.HandleCall("bogus", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}
