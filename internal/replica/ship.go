package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// ShipperConfig configures a leader-side journal shipper.
type ShipperConfig struct {
	// Log is the live journal to serve. Required.
	Log *durable.Log
	// Node names this leader in lease/status answers (free text).
	Node string
	// LeaseTTL is how long a granted write-proxy lease lasts; followers
	// renew at a fraction of it. Default 3s.
	LeaseTTL time.Duration
	// Heartbeat is the tick interval on caught-up streams; it bounds how
	// stale a healthy follower's last-contact clock can be. Default 1s.
	Heartbeat time.Duration
	// Obs receives the shipper metrics; nil disables them.
	Obs *obs.Registry
}

// Shipper serves a journal directory to followers: one goroutine per
// subscriber tails the on-disk generation chain, so a slow follower
// applies backpressure to nobody (it just reads older bytes) and the
// committer never waits on replication. Catch-up, rotation-following and
// reset-from-snapshot all fall out of the durable cursor helpers.
type Shipper struct {
	log      *durable.Log
	node     string
	leaseTTL time.Duration
	hbEvery  time.Duration

	subs         atomic.Int64
	recsShipped  *obs.Counter
	snapsShipped *obs.Counter
	resets       *obs.Counter
	leases       *obs.Counter
}

// NewShipper builds a shipper over log.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	s := &Shipper{
		log:          cfg.Log,
		node:         cfg.Node,
		leaseTTL:     cfg.LeaseTTL,
		hbEvery:      cfg.Heartbeat,
		recsShipped:  cfg.Obs.Counter("repl_ship_records_total"),
		snapsShipped: cfg.Obs.Counter("repl_ship_snapshots_total"),
		resets:       cfg.Obs.Counter("repl_ship_resets_total"),
		leases:       cfg.Obs.Counter("repl_ship_leases_total"),
	}
	cfg.Obs.Func("repl_ship_subscribers", func() uint64 {
		if n := s.subs.Load(); n > 0 {
			return uint64(n)
		}
		return 0
	})
	return s
}

// Register installs the replication service (stream + plain methods) on
// a wire server.
func (s *Shipper) Register(srv *rpc.TCPServer) {
	srv.RegisterStream(Service, MethodSubscribe, s.HandleSubscribe)
	srv.Register(Service, s.HandleCall)
}

// LeaseTTL reports the configured lease duration.
func (s *Shipper) LeaseTTL() time.Duration { return s.leaseTTL }

// Subscribers reports the live subscriber count.
func (s *Shipper) Subscribers() int64 { return s.subs.Load() }

// HandleCall serves the plain (non-stream) replication methods.
func (s *Shipper) HandleCall(method string, body []byte) ([]byte, error) {
	switch method {
	case MethodLease:
		s.leases.Inc()
		return json.Marshal(LeaseResponse{
			Node:      s.node,
			JournalID: s.log.ID(),
			Epoch:     s.log.Epoch(),
			TTLMillis: s.leaseTTL.Milliseconds(),
		})
	case MethodStatus:
		gen, size := s.log.ActiveGen()
		return json.Marshal(StatusResponse{
			Node:        s.node,
			JournalID:   s.log.ID(),
			Epoch:       s.log.Epoch(),
			Gen:         gen,
			Size:        size,
			Subscribers: s.subs.Load(),
		})
	default:
		return nil, fmt.Errorf("replica: unknown method %q", method)
	}
}

// HandleSubscribe is the subscribe_journal stream handler. The body is
// the follower's cursor (empty for "from scratch"); the returned stop is
// invoked by the transport when the subscriber's connection dies.
func (s *Shipper) HandleSubscribe(method string, body []byte, send func([]byte) error) (func(), error) {
	var cur durable.Cursor
	if len(body) > 0 {
		if err := json.Unmarshal(body, &cur); err != nil {
			return nil, fmt.Errorf("replica: bad cursor: %w", err)
		}
	}
	stop := make(chan struct{})
	var once sync.Once
	s.subs.Add(1)
	go s.run(cur, send, stop)
	return func() { once.Do(func() { close(stop) }) }, nil
}

// run is one subscriber's shipping loop.
func (s *Shipper) run(cur durable.Cursor, send func([]byte) error, stop chan struct{}) {
	defer s.subs.Add(-1)
	notify := make(chan struct{}, 1)
	s.log.NotifyCommit(notify)
	defer s.log.StopNotify(notify)
	dir := s.log.Dir()
	id, epoch := s.log.ID(), s.log.Epoch()

	// A cursor minted against a different journal identity — or a prior
	// epoch, whose torn tail recovery may have truncated after the
	// follower consumed it — addresses history this journal no longer
	// vouches for. Reset it from a snapshot.
	reset := cur.Gen == 0 || cur.ID != id || cur.Epoch != epoch
	if !reset {
		if !s.emit(send, Message{Kind: KindHello, Cursor: cur}) {
			return
		}
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		if reset {
			c, ok := s.sendSnapshot(send, stop)
			if !ok {
				return
			}
			cur, reset = c, false
		}
		recs, next, err := durable.ReadSegmentAt(dir, cur.Gen, cur.Off)
		switch {
		case err == nil:
		case errors.Is(err, durable.ErrNoSegment), errors.Is(err, durable.ErrCursorAhead):
			// Pruned under the cursor by a compaction, or history the
			// journal no longer has: start over from a snapshot.
			s.resets.Inc()
			reset = true
			continue
		default:
			// Transient I/O trouble: back off on the heartbeat tick
			// rather than spinning.
			if !s.wait(notify, stop, send, cur) {
				return
			}
			continue
		}
		if len(recs) > 0 {
			cur.Off = next
			if !s.emit(send, Message{Kind: KindRecs, Cursor: cur, Recs: recs}) {
				return
			}
			s.recsShipped.Add(uint64(len(recs)))
			continue
		}
		// Nothing intact at the cursor: either the generation rotated
		// under us, or we are genuinely caught up.
		activeGen, _ := s.log.ActiveGen()
		if cur.Gen < activeGen {
			size, serr := durable.SegmentSize(dir, cur.Gen)
			switch {
			case errors.Is(serr, durable.ErrNoSegment):
				s.resets.Inc()
				reset = true
			case serr != nil:
				if !s.wait(notify, stop, send, cur) {
					return
				}
			case cur.Off >= size:
				// Sealed and fully consumed: follow the rotation.
				cur = durable.Cursor{ID: cur.ID, Epoch: cur.Epoch, Gen: cur.Gen + 1}
			default:
				// A sealed segment with undecodable bytes before its end
				// — only the active generation may carry a torn tail, so
				// the file is damaged. Fail safe via snapshot.
				s.resets.Inc()
				reset = true
			}
			continue
		}
		// Caught up on the active generation: park until the committer
		// pokes us, heartbeating so the follower can bound staleness.
		if !s.wait(notify, stop, send, cur) {
			return
		}
	}
}

// sendSnapshot ships the newest snapshot (or an empty state positioned
// at the oldest surviving segment) and returns the cursor to tail from.
func (s *Shipper) sendSnapshot(send func([]byte) error, stop chan struct{}) (durable.Cursor, bool) {
	dir := s.log.Dir()
	for {
		select {
		case <-stop:
			return durable.Cursor{}, false
		default:
		}
		gen, st, ok, err := durable.LatestSnapshot(dir)
		if err == nil && !ok {
			// No snapshot yet: the whole history is still in the wal
			// chain, so an empty state at the oldest segment covers it.
			gen, ok, err = durable.OldestSegment(dir)
			st = durable.NewState()
		}
		if err != nil || !ok {
			// A listing error, or a directory with neither snapshots nor
			// segments (can only race a compaction's prune window):
			// retry after a beat.
			t := time.NewTimer(s.hbEvery)
			select {
			case <-stop:
				t.Stop()
				return durable.Cursor{}, false
			case <-t.C:
			}
			continue
		}
		cur := durable.Cursor{ID: s.log.ID(), Epoch: s.log.Epoch(), Gen: gen, Off: 0}
		if !s.emit(send, Message{Kind: KindSnapshot, Cursor: cur, State: st}) {
			return cur, false
		}
		s.snapsShipped.Inc()
		return cur, true
	}
}

// wait parks until a commit notification, the subscriber going away, or
// the heartbeat tick (which it forwards). Reports whether to continue.
func (s *Shipper) wait(notify, stop chan struct{}, send func([]byte) error, cur durable.Cursor) bool {
	t := time.NewTimer(s.hbEvery)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-notify:
		return true
	case <-t.C:
		return s.emit(send, Message{Kind: KindHB, Cursor: cur})
	}
}

// emit marshals and sends one stream message; false means the
// subscriber is gone.
func (s *Shipper) emit(send func([]byte) error, m Message) bool {
	b, err := json.Marshal(m)
	if err != nil {
		return false
	}
	return send(b) == nil
}
