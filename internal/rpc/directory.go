package rpc

import (
	"fmt"
	"sync"
	"time"
)

// Directory routes calls to services spread over several TCP endpoints:
// the deployment shape of cmd/oasisd, where each process hosts one or more
// services. Connections are dialled lazily and reused.
type Directory struct {
	timeout time.Duration

	mu    sync.Mutex
	addrs map[string]string // service -> address
	conns map[string]*TCPClient
}

var _ Caller = (*Directory)(nil)

// NewDirectory creates an empty directory; timeout bounds each call.
func NewDirectory(timeout time.Duration) *Directory {
	return &Directory{
		timeout: timeout,
		addrs:   make(map[string]string),
		conns:   make(map[string]*TCPClient),
	}
}

// Add maps a service name to a TCP address.
func (d *Directory) Add(service, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[service] = addr
}

// Call implements Caller by routing to the service's registered address.
func (d *Directory) Call(service, method string, body []byte) ([]byte, error) {
	d.mu.Lock()
	addr, ok := d.addrs[service]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (no address registered)", ErrUnknownService, service)
	}
	cli := d.conns[addr]
	d.mu.Unlock()

	if cli == nil {
		fresh, err := DialTCP(addr, d.timeout)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if existing := d.conns[addr]; existing != nil {
			d.mu.Unlock()
			fresh.Close() //nolint:errcheck
			cli = existing
		} else {
			d.conns[addr] = fresh
			d.mu.Unlock()
			cli = fresh
		}
	}
	out, err := cli.Call(service, method, body)
	if err != nil {
		// Drop a possibly broken connection so the next call redials,
		// unless the failure was an application-level RemoteError.
		if _, remote := err.(*RemoteError); !remote {
			d.mu.Lock()
			if d.conns[addr] == cli {
				delete(d.conns, addr)
			}
			d.mu.Unlock()
			cli.Close() //nolint:errcheck
		}
	}
	return out, err
}

// Close closes all pooled connections.
func (d *Directory) Close() {
	d.mu.Lock()
	conns := make([]*TCPClient, 0, len(d.conns))
	for _, c := range d.conns {
		conns = append(conns, c)
	}
	d.conns = make(map[string]*TCPClient)
	d.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
}
