package rpc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Directory routes calls to services spread over several TCP endpoints:
// the deployment shape of cmd/oasisd, where each process hosts one or more
// services. Clients are dialled lazily and reused; each client keeps its
// own connections alive (redial with backoff), so a transport error does
// not evict it from the directory.
type Directory struct {
	timeout  time.Duration
	poolSize int

	mu    sync.Mutex
	addrs map[string]string // service -> address
	conns map[string]*TCPClient
	reg   *obs.Registry // applied to every client, incl. lazily dialled
}

var _ Caller = (*Directory)(nil)

// NewDirectory creates an empty directory; timeout bounds each call. One
// connection per endpoint — use NewDirectoryPool to avoid head-of-line
// blocking under concurrent callers.
func NewDirectory(timeout time.Duration) *Directory {
	return NewDirectoryPool(timeout, 1)
}

// NewDirectoryPool is NewDirectory with poolSize connections per endpoint.
func NewDirectoryPool(timeout time.Duration, poolSize int) *Directory {
	if poolSize < 1 {
		poolSize = 1
	}
	return &Directory{
		timeout:  timeout,
		poolSize: poolSize,
		addrs:    make(map[string]string),
		conns:    make(map[string]*TCPClient),
	}
}

// Add maps a service name to a TCP address.
func (d *Directory) Add(service, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[service] = addr
}

// Instrument registers wire-level byte counters for the directory's
// clients with reg. Clients dialled later inherit the registry, so the
// call order relative to traffic does not matter.
func (d *Directory) Instrument(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = reg
	for _, c := range d.conns {
		c.Instrument(reg)
	}
}

// Call implements Caller by routing to the service's registered address.
func (d *Directory) Call(service, method string, body []byte) ([]byte, error) {
	d.mu.Lock()
	addr, ok := d.addrs[service]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (no address registered)", ErrUnknownService, service)
	}
	cli := d.conns[addr]
	d.mu.Unlock()

	if cli == nil {
		fresh, err := DialTCPPool(addr, d.timeout, d.poolSize)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		if existing := d.conns[addr]; existing != nil {
			d.mu.Unlock()
			fresh.Close() //nolint:errcheck
			cli = existing
		} else {
			if d.reg != nil {
				fresh.Instrument(d.reg)
			}
			d.conns[addr] = fresh
			d.mu.Unlock()
			cli = fresh
		}
	}
	// The client marks broken connections and redials on the next call,
	// so a transport error does not evict it here.
	return cli.Call(service, method, body)
}

// Close closes all pooled connections.
func (d *Directory) Close() {
	d.mu.Lock()
	conns := make([]*TCPClient, 0, len(d.conns))
	for _, c := range d.conns {
		conns = append(conns, c)
	}
	d.conns = make(map[string]*TCPClient)
	d.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
}
