package rpc

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestDirectoryRoutesAcrossServers(t *testing.T) {
	srvA, addrA := startServer(t)
	srvA.Register("alpha", func(method string, body []byte) ([]byte, error) {
		return []byte("A:" + method), nil
	})
	srvB, addrB := startServer(t)
	srvB.Register("beta", func(method string, body []byte) ([]byte, error) {
		return []byte("B:" + method), nil
	})

	d := NewDirectory(5 * time.Second)
	defer d.Close()
	d.Add("alpha", addrA)
	d.Add("beta", addrB)

	out, err := d.Call("alpha", "m1", nil)
	if err != nil || string(out) != "A:m1" {
		t.Fatalf("alpha call = (%q, %v)", out, err)
	}
	out, err = d.Call("beta", "m2", nil)
	if err != nil || string(out) != "B:m2" {
		t.Fatalf("beta call = (%q, %v)", out, err)
	}
}

func TestDirectoryUnknownService(t *testing.T) {
	d := NewDirectory(time.Second)
	defer d.Close()
	if _, err := d.Call("ghost", "m", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v", err)
	}
}

func TestDirectoryReusesConnection(t *testing.T) {
	var accepted int
	srv := NewTCPServer()
	srv.Register("svc", func(method string, body []byte) ([]byte, error) { return nil, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingListener{Listener: ln, accepted: &accepted}
	go srv.Serve(counting) //nolint:errcheck // dies with the test server
	t.Cleanup(srv.Close)

	d := NewDirectory(5 * time.Second)
	defer d.Close()
	d.Add("svc", ln.Addr().String())
	for i := 0; i < 5; i++ {
		if _, err := d.Call("svc", "m", nil); err != nil {
			t.Fatal(err)
		}
	}
	if accepted != 1 {
		t.Errorf("accepted %d connections, want 1 (pooling)", accepted)
	}
}

func TestDirectoryRemoteErrorKeepsConnection(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		if method == "bad" {
			return nil, errors.New("no")
		}
		return []byte("ok"), nil
	})
	d := NewDirectory(5 * time.Second)
	defer d.Close()
	d.Add("svc", addr)
	if _, err := d.Call("svc", "bad", nil); err == nil {
		t.Fatal("expected remote error")
	}
	// The connection survives an application error.
	out, err := d.Call("svc", "good", nil)
	if err != nil || string(out) != "ok" {
		t.Errorf("follow-up call = (%q, %v)", out, err)
	}
}

func TestDirectoryRedialsAfterServerRestart(t *testing.T) {
	srv := NewTCPServer()
	srv.Register("svc", func(method string, body []byte) ([]byte, error) { return []byte("v1"), nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln) //nolint:errcheck // dies with the test server

	d := NewDirectory(5 * time.Second)
	defer d.Close()
	d.Add("svc", addr)
	if _, err := d.Call("svc", "m", nil); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// The stale pooled connection fails once and is dropped.
	if _, err := d.Call("svc", "m", nil); err == nil {
		t.Fatal("call to dead server succeeded")
	}

	// Restart on the same address; the next call redials.
	srv2 := NewTCPServer()
	srv2.Register("svc", func(method string, body []byte) ([]byte, error) { return []byte("v2"), nil })
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv2.Serve(ln2) //nolint:errcheck // dies with the test server
	t.Cleanup(srv2.Close)

	var out []byte
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		out, err = d.Call("svc", "m", nil)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil || string(out) != "v2" {
		t.Errorf("post-restart call = (%q, %v)", out, err)
	}
}

type countingListener struct {
	net.Listener
	accepted *int
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		*l.accepted++
	}
	return c, err
}
