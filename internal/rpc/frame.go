package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Wire protocol v2 ("OW2"): length-prefixed, CRC-checked binary frames
// multiplexed by request id over one connection. Many calls are in flight
// per connection at once; responses match requests by id, so a slow
// handler no longer head-of-line-blocks its pool slot the way the
// lockstep gob exchange did (and a late response is simply dropped by the
// demux instead of desyncing the stream).
//
// A v2 client announces itself with a 4-byte preamble the moment the
// connection opens:
//
//	0x00 'O' 'W' version
//
// The leading zero byte is the protocol discriminator: a gob stream can
// never begin with 0x00 (gob prefixes every message with its byte count,
// encoded as either the count itself for counts < 128 or as a negated
// byte-length marker — both nonzero), so the server peeks one byte and
// serves whichever protocol the client speaks. Legacy gob clients keep
// working against new servers, which is the rolling-upgrade path.
//
// Every frame after the preamble has the same envelope in both
// directions:
//
//	u32  length   big-endian count of the bytes that follow (kind..crc)
//	u8   kind     1 = request, 2 = response, 3 = event, 4 = cancel
//	u64  id       big-endian request id
//	...  payload  kind-specific (below)
//	u32  crc      IEEE CRC-32 of kind..payload
//
// Request payload:  u16 len + service, u16 len + method, body (to crc).
// Response payload: u8 flags (bit0 = error), data (to crc) — the handler
// result body, or the error text when the flag is set.
// Event payload:    opaque bytes, pushed server→client on a stream whose
// id is the id of the subscribe request that opened it (see stream.go).
// Cancel payload:   empty, sent client→server to end the stream opened
// by the request with the same id (unacknowledged; see stream.go).
const (
	frameProtoByte   = 0x00 // discriminator: never the first byte of a gob stream
	frameMagic0      = 'O'
	frameMagic1      = 'W'
	frameVersion     = 0x02
	frameKindRequest = 0x01
	frameKindRespons = 0x02
	frameKindEvent   = 0x03
	frameKindCancel  = 0x04
	respFlagError    = 0x01

	// frameEnvelope is the non-payload byte count covered by the length
	// field: kind (1) + id (8) + crc (4).
	frameEnvelope = 13

	// maxFrameSize bounds a single frame so a corrupt or hostile length
	// prefix cannot make the reader allocate without limit.
	maxFrameSize = 64 << 20
)

// Errors surfaced by the frame codec. Both mark the stream unusable: with
// no resynchronisation point, a bad length or checksum poisons everything
// after it.
var (
	errFrameCorrupt  = errors.New("rpc: corrupt frame")
	errFrameTooLarge = errors.New("rpc: frame exceeds size limit")
)

// framePreamble returns the 4-byte connection preamble a v2 client sends
// before its first frame.
func framePreamble() []byte {
	return []byte{frameProtoByte, frameMagic0, frameMagic1, frameVersion}
}

// checkPreamble validates the 3 preamble bytes after the discriminator.
func checkPreamble(p []byte) error {
	if len(p) != 3 || p[0] != frameMagic0 || p[1] != frameMagic1 {
		return fmt.Errorf("%w: bad preamble magic", errFrameCorrupt)
	}
	if p[2] != frameVersion {
		return fmt.Errorf("%w: unsupported protocol version %d", errFrameCorrupt, p[2])
	}
	return nil
}

// frameBufPool recycles outbound frame buffers: a frame is built, handed
// to the connection's writer goroutine, copied into the buffered writer
// and then dead — exactly the lifecycle a pool wants. Oversized buffers
// (one giant batch) are dropped rather than pinned.
var frameBufPool sync.Pool

const frameBufPoolMax = 256 << 10

func getFrameBuf() []byte {
	if v := frameBufPool.Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return nil
}

func putFrameBuf(buf []byte) {
	if cap(buf) == 0 || cap(buf) > frameBufPoolMax {
		return
	}
	frameBufPool.Put(&buf)
}

// appendFrame appends one complete frame (envelope + payload + crc) to
// buf. The payload is passed in up to three segments so request encoding
// never concatenates service/method/body into a scratch buffer first.
func appendFrame(buf []byte, kind byte, id uint64, segs ...[]byte) []byte {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameEnvelope+n))
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint64(buf, id)
	for _, s := range segs {
		buf = append(buf, s...)
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, crc)
}

// appendRequestFrame encodes a request frame: the payload is the
// length-prefixed service and method names followed by the raw body.
func appendRequestFrame(buf []byte, id uint64, service, method string, body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], uint16(len(service)))
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(method)))
	// Assemble the variable-length payload head; the body segment rides
	// as-is (no copy beyond the single append into the output buffer).
	head := make([]byte, 0, 4+len(service)+len(method))
	head = append(head, hdr[:]...)
	head = append(head, service...)
	head = append(head, method...)
	return appendFrame(buf, frameKindRequest, id, head, body)
}

// appendResponseFrame encodes a response frame; errMsg != "" marks a
// handler error (the data segment then carries the error text).
func appendResponseFrame(buf []byte, id uint64, errMsg string, body []byte) []byte {
	if errMsg != "" {
		return appendFrame(buf, frameKindRespons, id, []byte{respFlagError}, []byte(errMsg))
	}
	return appendFrame(buf, frameKindRespons, id, []byte{0}, body)
}

// readFrame reads one frame off the stream, verifying the length bound
// and checksum. The returned payload is freshly allocated per frame (it
// outlives the read loop inside handler goroutines and response
// channels).
func readFrame(br *bufio.Reader) (kind byte, id uint64, payload []byte, err error) {
	kind, id, payload, _, err = readFrameInto(br, nil)
	return kind, id, payload, err
}

// readFrameInto is readFrame with a caller-recycled backing buffer: the
// frame is read into buf when it fits, and the actual storage is
// returned so the caller can pool it once the payload is dead. The
// server request loop uses this — a request frame's payload only has to
// outlive its handler call, unlike response payloads, whose ownership
// passes to Call's callers.
func readFrameInto(br *bufio.Reader, buf []byte) (kind byte, id uint64, payload, frame []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return 0, 0, nil, nil, err
	}
	frameLen := binary.BigEndian.Uint32(lenBuf[:])
	if frameLen < frameEnvelope {
		return 0, 0, nil, nil, fmt.Errorf("%w: frame length %d below envelope", errFrameCorrupt, frameLen)
	}
	if frameLen > maxFrameSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d bytes", errFrameTooLarge, frameLen)
	}
	if cap(buf) >= int(frameLen) {
		frame = buf[:frameLen]
	} else {
		frame = make([]byte, frameLen)
	}
	if _, err := io.ReadFull(br, frame); err != nil {
		return 0, 0, nil, nil, err
	}
	crcAt := frameLen - 4
	want := binary.BigEndian.Uint32(frame[crcAt:])
	if got := crc32.ChecksumIEEE(frame[:crcAt]); got != want {
		return 0, 0, nil, nil, fmt.Errorf("%w: crc mismatch", errFrameCorrupt)
	}
	kind = frame[0]
	id = binary.BigEndian.Uint64(frame[1:9])
	return kind, id, frame[9:crcAt], frame, nil
}

// parseRequest splits a request frame payload into its parts. service and
// method are copied into strings; body aliases the frame buffer (each
// frame owns its allocation, so the alias is safe for the handler's
// lifetime).
func parseRequest(payload []byte) (service, method string, body []byte, err error) {
	if len(payload) < 4 {
		return "", "", nil, fmt.Errorf("%w: truncated request head", errFrameCorrupt)
	}
	sLen := int(binary.BigEndian.Uint16(payload[0:]))
	mLen := int(binary.BigEndian.Uint16(payload[2:]))
	if len(payload) < 4+sLen+mLen {
		return "", "", nil, fmt.Errorf("%w: request names overflow payload", errFrameCorrupt)
	}
	service = string(payload[4 : 4+sLen])
	method = string(payload[4+sLen : 4+sLen+mLen])
	body = payload[4+sLen+mLen:]
	if len(body) == 0 {
		body = nil
	}
	return service, method, body, nil
}

// parseResponse splits a response frame payload. When isErr is set the
// data segment is the remote error text, otherwise it is the result body
// (aliasing the frame buffer, which the response owns).
func parseResponse(payload []byte) (body []byte, isErr bool, errMsg string, err error) {
	if len(payload) < 1 {
		return nil, false, "", fmt.Errorf("%w: empty response payload", errFrameCorrupt)
	}
	data := payload[1:]
	if payload[0]&respFlagError != 0 {
		return nil, true, string(data), nil
	}
	if len(data) == 0 {
		data = nil
	}
	return data, false, "", nil
}
