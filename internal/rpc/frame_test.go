package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFramePreambleRoundTrip(t *testing.T) {
	pre := framePreamble()
	if len(pre) != 4 || pre[0] != frameProtoByte {
		t.Fatalf("preamble = %v", pre)
	}
	if err := checkPreamble(pre[1:]); err != nil {
		t.Fatalf("checkPreamble(own preamble) = %v", err)
	}
	if err := checkPreamble([]byte{'O', 'W', 0x7f}); err == nil {
		t.Fatal("future protocol version accepted")
	}
	if err := checkPreamble([]byte{'X', 'Y', frameVersion}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRequestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		service, method string
		body            []byte
	}{
		{"svc", "method", []byte("hello")},
		{"", "", nil},
		{"s", "m", bytes.Repeat([]byte{0xab}, 1<<16)},
		{strings.Repeat("x", 300), "m", []byte{0}},
	}
	for _, tc := range cases {
		frame := appendRequestFrame(nil, 42, tc.service, tc.method, tc.body)
		kind, id, payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if kind != frameKindRequest || id != 42 {
			t.Fatalf("kind,id = %d,%d", kind, id)
		}
		service, method, body, err := parseRequest(payload)
		if err != nil {
			t.Fatalf("parseRequest: %v", err)
		}
		if service != tc.service || method != tc.method || !bytes.Equal(body, tc.body) {
			t.Fatalf("round trip mismatch: (%q,%q,%d bytes)", service, method, len(body))
		}
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	// Success carrying a body.
	frame := appendResponseFrame(nil, 7, "", []byte("result"))
	_, id, payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil || id != 7 {
		t.Fatalf("readFrame: id=%d err=%v", id, err)
	}
	body, isErr, msg, err := parseResponse(payload)
	if err != nil || isErr || msg != "" || string(body) != "result" {
		t.Fatalf("parseResponse = (%q,%v,%q,%v)", body, isErr, msg, err)
	}
	// Error carrying a message.
	frame = appendResponseFrame(nil, 8, "boom", nil)
	_, _, payload, err = readFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if _, isErr, msg, _ := parseResponse(payload); !isErr || msg != "boom" {
		t.Fatalf("error response = (%v, %q)", isErr, msg)
	}
}

// TestFrameCorruptionDetected flips each byte of a frame in turn; every
// mutation must surface an error (CRC or length check), never a silently
// different decode.
func TestFrameCorruptionDetected(t *testing.T) {
	orig := appendRequestFrame(nil, 99, "svc", "meth", []byte("payload!"))
	for i := range orig {
		mut := bytes.Clone(orig)
		mut[i] ^= 0x40
		kind, id, payload, err := readFrame(bufio.NewReader(bytes.NewReader(mut)))
		if err != nil {
			continue // detected: corrupt, short read, or over-limit
		}
		s, m, b, err := parseRequest(payload)
		if err != nil {
			continue
		}
		if kind == frameKindRequest && id == 99 && s == "svc" && m == "meth" && string(b) == "payload!" {
			t.Fatalf("byte %d flip decoded identically", i)
		}
		t.Fatalf("byte %d flip decoded without error to (%d,%d,%q,%q)", i, kind, id, s, m)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, maxFrameSize+1)
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversize frame err = %v", err)
	}
	buf = binary.BigEndian.AppendUint32(nil, frameEnvelope-1)
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("undersize frame err = %v", err)
	}
}

// FuzzFrameRoundTrip: for any (id, service, method, body), the encoded
// request frame decodes back to exactly the same parts.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "svc", "method", []byte("body"))
	f.Add(uint64(0), "", "", []byte(nil))
	f.Add(^uint64(0), "a", strings.Repeat("m", 100), bytes.Repeat([]byte{0xff}, 500))
	f.Fuzz(func(t *testing.T, id uint64, service, method string, body []byte) {
		if len(service) > 0xffff || len(method) > 0xffff {
			t.Skip() // name lengths are u16 on the wire by construction
		}
		frame := appendRequestFrame(nil, id, service, method, body)
		kind, gotID, payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("readFrame(own encoding): %v", err)
		}
		if kind != frameKindRequest || gotID != id {
			t.Fatalf("kind,id = %d,%d want %d,%d", kind, gotID, frameKindRequest, id)
		}
		s, m, b, err := parseRequest(payload)
		if err != nil {
			t.Fatalf("parseRequest(own encoding): %v", err)
		}
		if s != service || m != method || !bytes.Equal(b, body) {
			t.Fatalf("round trip mismatch")
		}
	})
}

// FuzzReadFrame: arbitrary bytes must never panic the frame reader or the
// payload parsers — they may only return errors (or a valid decode, if
// the fuzzer constructs one).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(framePreamble())
	f.Add(appendRequestFrame(nil, 3, "svc", "m", []byte("x")))
	f.Add(appendResponseFrame(nil, 4, "err text", nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			kind, _, payload, err := readFrame(br)
			if err != nil {
				return // includes io.EOF / io.ErrUnexpectedEOF
			}
			switch kind {
			case frameKindRequest:
				parseRequest(payload) //nolint:errcheck
			case frameKindRespons:
				parseResponse(payload) //nolint:errcheck
			}
			_ = io.EOF
		}
	})
}
