package rpc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// BreakerState is the per-service circuit breaker state machine of a
// ResilientCaller: Closed (normal), Open (failing fast), HalfOpen (one
// probe in flight deciding whether to close again).
type BreakerState int32

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// DefaultIdempotent lists the methods a ResilientCaller retries by
// default: callback validation (the ECR path of Fig. 5) and other
// at-least-once-safe operations. Role activation and appointment issue
// side-effecting operations and are deliberately absent — a retry after an
// ambiguous failure could issue a second certificate.
func DefaultIdempotent() map[string]bool {
	return map[string]bool{
		"validate_rmc":   true,
		"validate_appt":  true,
		"validate_batch": true, // batch of the two validations above
		"end_session":    true, // deactivation is revoke-once idempotent
		"revoke":         true, // ditto; the ack may flip to false on a retry
		"publish":        true, // event relay delivery is at-least-once
	}
}

// ResilientConfig tunes a ResilientCaller. The zero value selects the
// defaults noted on each field.
type ResilientConfig struct {
	// CallTimeout bounds each attempt (0 = rely on the transport's own
	// deadline). Measured on the wall clock even when Now is injected.
	CallTimeout time.Duration
	// MaxAttempts is the total number of attempts for idempotent methods
	// (default 3). Non-idempotent methods always get exactly one.
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the first retry,
	// doubling per attempt (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the pre-jitter backoff (default 500ms).
	MaxBackoff time.Duration
	// FailureThreshold is the consecutive transport-failure count that
	// opens a service's breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker waits before half-opening for
	// a probe (default 2s).
	Cooldown time.Duration
	// Idempotent marks the methods safe to retry (nil selects
	// DefaultIdempotent()).
	Idempotent map[string]bool
	// Sleep, Now and Rand are test/experiment seams; they default to
	// time.Sleep, time.Now and math/rand.Float64.
	Sleep func(time.Duration)
	Now   func() time.Time
	Rand  func() float64
	// Obs, when set, registers the caller's counters and per-method
	// call-latency histograms (rpc_call_ns{service=...,method=...}) with
	// the observability registry. Nil disables metric export and all
	// per-call timing.
	Obs *obs.Registry
	// Trace, when set, records every circuit-breaker state transition
	// (closed/open/half-open) as a "breaker" trace event.
	Trace *obs.Tracer
}

// ResilientMetrics is a snapshot of a ResilientCaller's counters.
type ResilientMetrics struct {
	Calls     uint64 // Call invocations
	Attempts  uint64 // attempts that reached the transport
	Retries   uint64 // attempts beyond the first
	Failures  uint64 // transport-level attempt failures
	FastFails uint64 // calls rejected by an open breaker
	Opens     uint64 // breaker transitions to open
}

// ResilientCaller decorates another Caller with per-call deadlines,
// bounded retries (exponential backoff with equal jitter) for idempotent
// methods, and a per-service circuit breaker that trips after consecutive
// transport failures and half-opens on a probe after a cooldown.
//
// Application-level *RemoteError results are passed through untouched:
// they prove the remote service is up, so they never trip the breaker and
// are never retried.
type ResilientCaller struct {
	next Caller
	cfg  ResilientConfig

	calls     atomic.Uint64
	attempts  atomic.Uint64
	retries   atomic.Uint64
	failures  atomic.Uint64
	fastFails atomic.Uint64
	opens     atomic.Uint64

	mu       sync.Mutex
	breakers map[string]*breaker

	// hists caches per-(service,method) latency histogram handles so the
	// instrumented call path does one sync.Map load, not a registry
	// lookup with name formatting.
	hists sync.Map // "service\x00method" -> *obs.Histogram
}

var _ Caller = (*ResilientCaller)(nil)

// NewResilientCaller wraps next with the given policy.
func NewResilientCaller(next Caller, cfg ResilientConfig) *ResilientCaller {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Idempotent == nil {
		cfg.Idempotent = DefaultIdempotent()
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64 //nolint:gosec // jitter, not crypto
	}
	r := &ResilientCaller{
		next:     next,
		cfg:      cfg,
		breakers: make(map[string]*breaker),
	}
	if reg := cfg.Obs; reg != nil {
		reg.Func("rpc_calls_total", r.calls.Load)
		reg.Func("rpc_attempts_total", r.attempts.Load)
		reg.Func("rpc_retries_total", r.retries.Load)
		reg.Func("rpc_failures_total", r.failures.Load)
		reg.Func("rpc_fastfails_total", r.fastFails.Load)
		reg.Func("rpc_breaker_opens_total", r.opens.Load)
	}
	return r
}

// Call implements Caller. With a registry configured, the end-to-end call
// latency (attempts, backoff and fast-fails included) lands in a
// per-(service,method) histogram; without one the timing is skipped
// entirely so the uninstrumented path stays at its original cost.
func (r *ResilientCaller) Call(service, method string, body []byte) ([]byte, error) {
	if r.cfg.Obs == nil {
		return r.call(service, method, body)
	}
	start := time.Now()
	out, err := r.call(service, method, body)
	r.callHist(service, method).ObserveSince(start)
	return out, err
}

// callHist returns the latency histogram for one (service, method) pair.
func (r *ResilientCaller) callHist(service, method string) *obs.Histogram {
	key := service + "\x00" + method
	if h, ok := r.hists.Load(key); ok {
		return h.(*obs.Histogram)
	}
	h := r.cfg.Obs.Histogram(fmt.Sprintf("rpc_call_ns{service=%q,method=%q}", service, method), nil)
	actual, _ := r.hists.LoadOrStore(key, h)
	return actual.(*obs.Histogram)
}

func (r *ResilientCaller) call(service, method string, body []byte) ([]byte, error) {
	r.calls.Add(1)
	br := r.breaker(service)
	attempts := 1
	if r.cfg.Idempotent[method] {
		attempts = r.cfg.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if !br.allow(r.cfg.Now(), r.cfg.Cooldown) {
			r.fastFails.Add(1)
			if lastErr != nil {
				return nil, fmt.Errorf("%s.%s: %w (last failure: %v)", service, method, ErrCircuitOpen, lastErr)
			}
			return nil, fmt.Errorf("%s.%s: %w", service, method, ErrCircuitOpen)
		}
		r.attempts.Add(1)
		if attempt > 0 {
			r.retries.Add(1)
		}
		out, err := r.attempt(service, method, body)
		if !IsUnavailable(err) {
			br.success()
			return out, err
		}
		r.failures.Add(1)
		if br.failure(r.cfg.Now(), r.cfg.FailureThreshold) {
			r.opens.Add(1)
		}
		lastErr = err
		if attempt < attempts-1 {
			r.cfg.Sleep(r.backoff(attempt))
		}
	}
	return nil, lastErr
}

// attempt runs one transport call under the per-call deadline. On timeout
// the underlying call keeps running in its goroutine (the transport's own
// deadline, if any, bounds it); its eventual result is discarded.
func (r *ResilientCaller) attempt(service, method string, body []byte) ([]byte, error) {
	if r.cfg.CallTimeout <= 0 {
		return r.next.Call(service, method, body)
	}
	type result struct {
		out []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := r.next.Call(service, method, body)
		ch <- result{out, err}
	}()
	timer := time.NewTimer(r.cfg.CallTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.out, res.err
	case <-timer.C:
		return nil, fmt.Errorf("%s.%s after %v: %w", service, method, r.cfg.CallTimeout, ErrCallTimeout)
	}
}

// backoff computes the sleep before retry attempt+1: exponential from
// BaseBackoff, capped at MaxBackoff, with equal jitter (half fixed, half
// random) so synchronized retriers fan out.
func (r *ResilientCaller) backoff(attempt int) time.Duration {
	d := r.cfg.BaseBackoff << uint(min(attempt, 20))
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	return d/2 + time.Duration(r.cfg.Rand()*float64(d/2))
}

// BreakerState reports the breaker state for one service (Closed if the
// service has never been called).
func (r *ResilientCaller) BreakerState(service string) BreakerState {
	r.mu.Lock()
	br := r.breakers[service]
	r.mu.Unlock()
	if br == nil {
		return BreakerClosed
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.state
}

// Metrics returns a snapshot of the caller's counters (the E12 experiment
// harness reads these).
func (r *ResilientCaller) Metrics() ResilientMetrics {
	return ResilientMetrics{
		Calls:     r.calls.Load(),
		Attempts:  r.attempts.Load(),
		Retries:   r.retries.Load(),
		Failures:  r.failures.Load(),
		FastFails: r.fastFails.Load(),
		Opens:     r.opens.Load(),
	}
}

func (r *ResilientCaller) breaker(service string) *breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	br := r.breakers[service]
	if br == nil {
		br = &breaker{}
		if tr := r.cfg.Trace; tr != nil {
			br.notify = func(from, to BreakerState, detail string) {
				tr.Record(obs.TraceEvent{
					Kind:    "breaker",
					Service: service,
					Outcome: to.String(),
					Detail:  fmt.Sprintf("%s -> %s: %s", from, to, detail),
				})
			}
		}
		r.breakers[service] = br
	}
	return br
}

// breaker is one service's circuit state.
type breaker struct {
	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive transport failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	// notify observes state transitions (set once at construction, called
	// under mu with from != to).
	notify func(from, to BreakerState, detail string)
}

// transition moves the state machine and reports the change.
func (b *breaker) transition(to BreakerState, detail string) {
	from := b.state
	b.state = to
	if b.notify != nil && from != to {
		b.notify(from, to, detail)
	}
}

// allow reports whether a call may proceed, transitioning Open→HalfOpen
// once the cooldown has elapsed (the transitioning caller is the probe).
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) >= cooldown {
			b.transition(BreakerHalfOpen, "cooldown elapsed, probing")
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		// Only the probe is in flight; everyone else fails fast until
		// the verdict is in.
		return false
	default:
		return true
	}
}

// success records a call that reached the service; any state closes.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(BreakerClosed, "call reached the service")
	b.failures = 0
	b.probing = false
}

// failure records a transport failure, reporting whether this transition
// opened the breaker.
func (b *breaker) failure(now time.Time, threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		// The probe failed: back to open for another cooldown.
		b.transition(BreakerOpen, "half-open probe failed")
		b.openedAt = now
		b.probing = false
		return true
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= threshold {
		b.transition(BreakerOpen, fmt.Sprintf("%d consecutive transport failures", b.failures))
		b.openedAt = now
		return true
	}
	return false
}
