package rpc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestBreakerTransitionsTraced walks one breaker through its full state
// machine — closed -> open on consecutive failures, open -> half-open on
// cooldown, a failed probe, a second cooldown and a successful probe — and
// checks that every transition lands in the trace and the counters land in
// the registry.
func TestBreakerTransitionsTraced(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	bus.SetFault(FailNTimes("issuer", 6))
	clk := newManualClock()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	rc := newTestResilient(bus, clk, ResilientConfig{
		MaxAttempts:      1,
		FailureThreshold: 5,
		Cooldown:         time.Second,
		Obs:              reg,
		Trace:            tr,
	})

	for i := 0; i < 5; i++ {
		rc.Call("issuer", "validate_rmc", nil) //nolint:errcheck // driving the breaker
	}
	if got := rc.BreakerState("issuer"); got != BreakerOpen {
		t.Fatalf("breaker = %v after threshold failures, want open", got)
	}
	// Fast-fail while open: no transition, no trace.
	rc.Call("issuer", "validate_rmc", nil) //nolint:errcheck

	clk.Advance(time.Second)
	rc.Call("issuer", "validate_rmc", nil) //nolint:errcheck // probe, fails (6th fault)
	clk.Advance(time.Second)
	if _, err := rc.Call("issuer", "validate_rmc", nil); err != nil {
		t.Fatalf("probe after faults exhausted: %v", err)
	}
	if got := rc.BreakerState("issuer"); got != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", got)
	}

	var outcomes []string
	for _, ev := range tr.Snapshot() {
		if ev.Kind != "breaker" {
			continue
		}
		if ev.Service != "issuer" {
			t.Errorf("breaker trace for wrong service: %+v", ev)
		}
		outcomes = append(outcomes, ev.Outcome)
	}
	want := "open half-open open half-open closed"
	if got := strings.Join(outcomes, " "); got != want {
		t.Errorf("breaker transitions = %q, want %q", got, want)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, wantLine := range []string{
		"rpc_breaker_opens_total 2",
		"rpc_fastfails_total 1",
		// 5 threshold failures + 1 fast-fail + 2 probes.
		`rpc_call_ns_count{service="issuer",method="validate_rmc"} 8`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("metrics missing %q:\n%s", wantLine, out)
		}
	}
}
