package rpc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep makes retry backoff instantaneous in tests.
func noSleep(time.Duration) {}

// manualClock is an injectable Now for breaker cooldown tests.
type manualClock struct{ now atomic.Int64 }

func newManualClock() *manualClock {
	c := &manualClock{}
	c.now.Store(time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *manualClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *manualClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

func newTestResilient(next Caller, clk *manualClock, cfg ResilientConfig) *ResilientCaller {
	cfg.Sleep = noSleep
	if clk != nil {
		cfg.Now = clk.Now
	}
	return NewResilientCaller(next, cfg)
}

func TestResilientRetryRecoversTransientFault(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	bus.SetFault(FailNTimes("issuer", 2))
	rc := newTestResilient(bus, nil, ResilientConfig{MaxAttempts: 3})

	out, err := rc.Call("issuer", "validate_rmc", nil)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if string(out) != "ok" {
		t.Errorf("out = %q", out)
	}
	m := rc.Metrics()
	if m.Retries != 2 || m.Attempts != 3 {
		t.Errorf("metrics = %+v, want 2 retries over 3 attempts", m)
	}
	if got := rc.BreakerState("issuer"); got != BreakerClosed {
		t.Errorf("breaker = %v after recovery", got)
	}
}

func TestResilientNonIdempotentNotRetried(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) {
		return nil, nil
	})
	bus.SetFault(FailNTimes("issuer", 1))
	rc := newTestResilient(bus, nil, ResilientConfig{MaxAttempts: 3})

	if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want injected fault surfaced without retry", err)
	}
	if calls := bus.Calls(); calls != 1 {
		t.Errorf("transport calls = %d, want 1 (activate must not be retried)", calls)
	}
}

func TestResilientRemoteErrorPassesThrough(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) {
		return nil, errors.New("denied")
	})
	rc := newTestResilient(bus, nil, ResilientConfig{MaxAttempts: 3, FailureThreshold: 1})

	for i := 0; i < 5; i++ {
		var re *RemoteError
		if _, err := rc.Call("issuer", "validate_rmc", nil); !errors.As(err, &re) {
			t.Fatalf("err = %v, want RemoteError", err)
		}
	}
	// Application errors prove the service is up: no retries, no trips.
	if calls := bus.Calls(); calls != 5 {
		t.Errorf("transport calls = %d, want 5", calls)
	}
	if got := rc.BreakerState("issuer"); got != BreakerClosed {
		t.Errorf("breaker = %v, application errors must not trip it", got)
	}
}

func TestResilientBreakerOpensAndFastFails(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) { return nil, nil })
	bus.SetFault(FailAll("issuer"))
	clk := newManualClock()
	rc := newTestResilient(bus, clk, ResilientConfig{MaxAttempts: 1, FailureThreshold: 3, Cooldown: time.Minute})

	for i := 0; i < 3; i++ {
		if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := rc.BreakerState("issuer"); got != BreakerOpen {
		t.Fatalf("breaker = %v after %d consecutive failures", got, 3)
	}
	transportBefore := bus.Calls()
	for i := 0; i < 4; i++ {
		if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open breaker admitted a call: %v", err)
		}
	}
	if bus.Calls() != transportBefore {
		t.Error("open breaker still reached the transport")
	}
	if m := rc.Metrics(); m.FastFails != 4 || m.Opens != 1 {
		t.Errorf("metrics = %+v", m)
	}
	// A healthy, unrelated service is unaffected (per-service breakers).
	bus.Register("other", func(method string, body []byte) ([]byte, error) { return nil, nil })
	if _, err := rc.Call("other", "activate", nil); err != nil {
		t.Errorf("healthy service blocked by issuer's breaker: %v", err)
	}
}

func TestResilientHalfOpenProbeClosesOnSuccess(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) { return nil, nil })
	bus.SetFault(FailAll("issuer"))
	clk := newManualClock()
	rc := newTestResilient(bus, clk, ResilientConfig{MaxAttempts: 1, FailureThreshold: 2, Cooldown: time.Minute})

	for i := 0; i < 2; i++ {
		rc.Call("issuer", "activate", nil) //nolint:errcheck
	}
	if got := rc.BreakerState("issuer"); got != BreakerOpen {
		t.Fatalf("breaker = %v", got)
	}
	// Partition heals; before the cooldown the breaker still fails fast.
	bus.SetFault(nil)
	if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("pre-cooldown call: %v", err)
	}
	clk.Advance(time.Minute)
	if _, err := rc.Call("issuer", "activate", nil); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if got := rc.BreakerState("issuer"); got != BreakerClosed {
		t.Errorf("breaker = %v after successful probe", got)
	}
}

func TestResilientHalfOpenProbeReopensOnFailure(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) { return nil, nil })
	bus.SetFault(FailAll("issuer"))
	clk := newManualClock()
	rc := newTestResilient(bus, clk, ResilientConfig{MaxAttempts: 1, FailureThreshold: 2, Cooldown: time.Minute})

	for i := 0; i < 2; i++ {
		rc.Call("issuer", "activate", nil) //nolint:errcheck
	}
	clk.Advance(time.Minute)
	if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("probe err = %v", err)
	}
	if got := rc.BreakerState("issuer"); got != BreakerOpen {
		t.Errorf("breaker = %v after failed probe, want open again", got)
	}
	// And it stays open for another full cooldown.
	clk.Advance(30 * time.Second)
	if _, err := rc.Call("issuer", "activate", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("reopened breaker admitted a call: %v", err)
	}
}

func TestResilientCallTimeout(t *testing.T) {
	bus := NewLoopback()
	bus.Register("issuer", func(method string, body []byte) ([]byte, error) { return nil, nil })
	bus.SetLatency(200 * time.Millisecond)
	rc := newTestResilient(bus, nil, ResilientConfig{MaxAttempts: 1, CallTimeout: 20 * time.Millisecond})

	start := time.Now()
	_, err := rc.Call("issuer", "activate", nil)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("deadline not enforced: call took %v", elapsed)
	}
}

func TestIsUnavailableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&RemoteError{Service: "s", Method: "m", Msg: "denied"}, false},
		{ErrInjectedFault, true},
		{ErrConnBroken, true},
		{ErrCircuitOpen, true},
		{ErrCallTimeout, true},
		{ErrUnknownService, true},
		{errors.New("dial tcp: connection refused"), true},
	}
	for _, c := range cases {
		if got := IsUnavailable(c.err); got != c.want {
			t.Errorf("IsUnavailable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
