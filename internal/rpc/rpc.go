// Package rpc provides the request/response messaging substrate used for
// OASIS callback validation and cross-domain invocation (Sects. 3-5 of the
// paper). Two interchangeable transports are provided: an in-process
// loopback (with deterministic fault injection, used by tests and the
// experiment harness) and a TCP transport (cmd/oasisd) so that multi-domain
// sessions can also run across processes.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by transports.
var (
	// ErrUnknownService is returned when no handler is registered for
	// the target service.
	ErrUnknownService = errors.New("unknown service")
	// ErrInjectedFault is the base error for faults injected by tests
	// and the experiment harness.
	ErrInjectedFault = errors.New("injected transport fault")
	// ErrConnBroken marks a connection whose stream state can no longer
	// be trusted (a lost, late, or skewed response frame). The client
	// drops the connection and redials; callers may retry idempotent
	// work through a ResilientCaller.
	ErrConnBroken = errors.New("rpc: connection broken")
	// ErrCircuitOpen is returned by a ResilientCaller without touching
	// the transport while the target service's circuit breaker is open.
	ErrCircuitOpen = errors.New("rpc: circuit open")
	// ErrCallTimeout is returned by a ResilientCaller when one attempt
	// exceeds its per-call deadline.
	ErrCallTimeout = errors.New("rpc: call timed out")
)

// IsUnavailable reports whether err indicates the target service could not
// be reached or answered unusably (dial/deadline/stream failures, injected
// faults, open circuits) as opposed to an application-level *RemoteError,
// which proves the remote handler ran. Retry, breaker accounting and the
// fail-safe degraded-validation path all key off this distinction.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}

// RemoteError wraps an application-level error returned by the remote
// handler, preserving the remote message across the wire.
type RemoteError struct {
	Service string
	Method  string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s.%s: %s", e.Service, e.Method, e.Msg)
}

// Handler serves calls addressed to one service. The method name is the
// service-level operation (e.g. "activate", "validate", "invoke").
type Handler func(method string, body []byte) ([]byte, error)

// Caller issues calls to named services. Both transports implement it.
type Caller interface {
	Call(service, method string, body []byte) ([]byte, error)
}

// Fault decides whether a call should fail artificially; returning a
// non-nil error aborts the call before it reaches the handler.
type Fault func(service, method string) error

// Loopback is an in-process transport: handlers registered on it are
// invoked synchronously by Call. Latency can be simulated per call and
// faults injected deterministically. Besides call counts it tracks the
// serialized bytes moved in each direction, so codec-overhead harnesses
// can compare wire sizes without a TCP socket in the loop.
type Loopback struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	fault    Fault
	latency  time.Duration
	calls    uint64
	bytesOut uint64 // request body bytes handed to handlers
	bytesIn  uint64 // response body bytes returned by handlers
}

var _ Caller = (*Loopback)(nil)

// NewLoopback creates an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{handlers: make(map[string]Handler)}
}

// Register installs the handler for a service name, replacing any previous
// registration.
func (l *Loopback) Register(service string, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[service] = h
}

// Deregister removes a service (used to simulate a service going down).
func (l *Loopback) Deregister(service string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, service)
}

// SetFault installs a fault injector (nil clears it).
func (l *Loopback) SetFault(f Fault) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fault = f
}

// SetLatency simulates a per-call network delay.
func (l *Loopback) SetLatency(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latency = d
}

// Calls reports the number of calls attempted (including faulted ones);
// the experiment harness uses this to count callback traffic.
func (l *Loopback) Calls() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.calls
}

// Bytes reports the serialized body bytes moved through the transport:
// sent is request bytes handed to handlers, received is response bytes
// returned by them. Faulted and unknown-service calls count their request
// bytes (they were serialized and "sent") but no response.
func (l *Loopback) Bytes() (sent, received uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytesOut, l.bytesIn
}

// Call implements Caller.
func (l *Loopback) Call(service, method string, body []byte) ([]byte, error) {
	l.mu.Lock()
	l.calls++
	l.bytesOut += uint64(len(body))
	h, ok := l.handlers[service]
	fault := l.fault
	latency := l.latency
	l.mu.Unlock()

	if latency > 0 {
		time.Sleep(latency)
	}
	if fault != nil {
		if err := fault(service, method); err != nil {
			return nil, err
		}
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, service)
	}
	out, err := h(method, body)
	if err != nil {
		return nil, &RemoteError{Service: service, Method: method, Msg: err.Error()}
	}
	l.mu.Lock()
	l.bytesIn += uint64(len(out))
	l.mu.Unlock()
	return out, nil
}

// FailAll returns a Fault that fails every matching call (a network
// partition between the caller and one service); service=="" severs
// everything. Clear it with SetFault(nil) to heal the partition.
func FailAll(service string) Fault {
	return func(svc, method string) error {
		if service != "" && svc != service {
			return nil
		}
		return fmt.Errorf("%w: partition: %s.%s", ErrInjectedFault, svc, method)
	}
}

// FailNTimes returns a Fault that fails the first n matching calls and then
// passes everything; service=="" matches all services.
func FailNTimes(service string, n int) Fault {
	var mu sync.Mutex
	remaining := n
	return func(svc, method string) error {
		if service != "" && svc != service {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if remaining > 0 {
			remaining--
			return fmt.Errorf("%w: %s.%s", ErrInjectedFault, svc, method)
		}
		return nil
	}
}
