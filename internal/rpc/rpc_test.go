package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLoopbackCall(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(method string, body []byte) ([]byte, error) {
		return []byte(method + ":" + string(body)), nil
	})
	out, err := l.Call("svc", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Errorf("out = %q", out)
	}
	if l.Calls() != 1 {
		t.Errorf("Calls = %d", l.Calls())
	}
}

func TestLoopbackUnknownService(t *testing.T) {
	l := NewLoopback()
	if _, err := l.Call("nope", "m", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v", err)
	}
}

func TestLoopbackRemoteError(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(method string, body []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := l.Call("svc", "m", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v", err, err)
	}
	if re.Msg != "boom" || re.Service != "svc" || re.Method != "m" {
		t.Errorf("RemoteError = %+v", re)
	}
}

func TestLoopbackDeregister(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(string, []byte) ([]byte, error) { return nil, nil })
	l.Deregister("svc")
	if _, err := l.Call("svc", "m", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("err = %v", err)
	}
}

func TestLoopbackFaultInjection(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(string, []byte) ([]byte, error) { return []byte("ok"), nil })
	l.SetFault(FailNTimes("svc", 2))
	for i := 0; i < 2; i++ {
		if _, err := l.Call("svc", "m", nil); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if out, err := l.Call("svc", "m", nil); err != nil || string(out) != "ok" {
		t.Errorf("third call = (%q, %v)", out, err)
	}
	// Fault scoped to another service does not fire.
	l.SetFault(FailNTimes("other", 1))
	if _, err := l.Call("svc", "m", nil); err != nil {
		t.Errorf("scoped fault leaked: %v", err)
	}
	// Empty service matches all.
	l.SetFault(FailNTimes("", 1))
	if _, err := l.Call("svc", "m", nil); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("wildcard fault missed: %v", err)
	}
	l.SetFault(nil)
	if _, err := l.Call("svc", "m", nil); err != nil {
		t.Errorf("cleared fault still firing: %v", err)
	}
}

func TestLoopbackLatency(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(string, []byte) ([]byte, error) { return nil, nil })
	l.SetLatency(20 * time.Millisecond)
	start := time.Now()
	if _, err := l.Call("svc", "m", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestLoopbackConcurrent(t *testing.T) {
	l := NewLoopback()
	l.Register("svc", func(method string, body []byte) ([]byte, error) {
		return body, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("%d-%d", g, i))
				out, err := l.Call("svc", "echo", msg)
				if err != nil || string(out) != string(msg) {
					t.Errorf("call = (%q, %v)", out, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Calls() != 400 {
		t.Errorf("Calls = %d, want 400", l.Calls())
	}
}
