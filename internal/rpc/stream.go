package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Server→client event streams over the protocol-v2 framing.
//
// A stream is opened by an ordinary request frame whose (service, method)
// pair was registered with RegisterStream instead of Register. The server
// runs the StreamHandler to set the subscription up, acknowledges with an
// empty response frame (or an error response if setup failed), and from
// then on pushes frameKindEvent frames carrying opaque payloads, all
// tagged with the id of the opening request. Events share the
// connection's single coalescing writer with ordinary responses, so a
// stream never reorders or blocks concurrent calls on the same
// connection beyond the usual write-queue backpressure.
//
// Lifecycle: the stream lives until the client closes it or the
// connection dies for any reason, at which point the server invokes the
// handler's stop func exactly once. ClientStream.Close (and a subscribe
// abandoned by the per-call timeout) sends a frameKindCancel frame
// carrying the stream's id, so the server ends that one subscription
// promptly — without the cancel, an abandoned stream on a shared pooled
// connection would keep encoding and pushing every event, all discarded
// by the client demux as unmatched, until the whole connection died.
// The cancel is fire-and-forget: no ack, and a cancel racing the
// stream's setup is remembered so the subscription is stopped the
// moment the handler returns it.
//
// Ordering note: an event frame may legally arrive before the ack
// response (the subscription is live from the moment the handler
// returns). Clients register their event callback before sending the
// opening request, so early events are delivered, not dropped.

// ErrStreamUnsupported is returned by TCPClient.Stream when the pool slot
// speaks the legacy gob protocol (v1), which has no event framing.
var ErrStreamUnsupported = errors.New("rpc: event streams require protocol v2")

// StreamHandler sets up one server-side stream subscription. It is called
// on the connection's dispatch path with the opening request's method and
// body (valid only until the handler returns — copy anything retained)
// and a send func that pushes one event frame to the client. send is safe
// for concurrent use and returns ErrConnBroken once the connection is
// gone; the handler must arrange its own decoupling (e.g. a PeerQueue) if
// its event source must never block on a slow client. On success the
// handler returns a stop func, invoked exactly once when the stream ends.
type StreamHandler func(method string, body []byte, send func([]byte) error) (stop func(), err error)

// RegisterStream installs a stream handler for (service, method). Stream
// registrations are keyed by both names and take priority over a Register
// handler for the same service, for those two names only.
func (s *TCPServer) RegisterStream(service, method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.streams == nil {
		s.streams = make(map[string]StreamHandler)
	}
	s.streams[service+"\x00"+method] = h
}

// streamHandler looks up a stream registration; nil means (service,
// method) dispatches as an ordinary call.
func (s *TCPServer) streamHandler(service, method string) StreamHandler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.streams[service+"\x00"+method]
}

// connStreams tracks the live streams of one server connection so
// teardown can run every stop func exactly once, even against a
// concurrent setup racing the connection's death.
type connStreams struct {
	mu        sync.Mutex
	stops     map[uint64]func()
	cancelled map[uint64]struct{} // cancel frames that beat their stream's setup
	closed    bool
}

// add registers a stream's stop func; false means the connection is
// already tearing down — or a cancel frame for this id already arrived —
// and the caller must invoke stop itself.
func (c *connStreams) add(id uint64, stop func()) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if _, ok := c.cancelled[id]; ok {
		delete(c.cancelled, id)
		return false
	}
	if c.stops == nil {
		c.stops = make(map[uint64]func())
	}
	c.stops[id] = stop
	return true
}

// cancel ends the stream opened by request id: the returned stop func
// (nil if there is nothing to stop) must be invoked by the caller, off
// this lock. A cancel that raced ahead of its stream's setup (the open
// request dispatches on its own goroutine, so the read loop can reach
// the cancel frame first) is remembered, and add refuses the late
// registration so startStream stops it immediately.
func (c *connStreams) cancel(id uint64) (stop func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if stop, ok := c.stops[id]; ok {
		delete(c.stops, id)
		return stop
	}
	if c.cancelled == nil {
		c.cancelled = make(map[uint64]struct{})
	}
	c.cancelled[id] = struct{}{}
	return nil
}

// forget discards a remembered early cancel for a stream whose setup
// failed (no stop func will ever register under the id).
func (c *connStreams) forget(id uint64) {
	c.mu.Lock()
	delete(c.cancelled, id)
	c.mu.Unlock()
}

// stopAll ends every live stream and refuses later adds. Runs after the
// connection's dispatch goroutines drained but while its writer is still
// alive, so a stop func may flush queued events without deadlocking.
func (c *connStreams) stopAll() {
	c.mu.Lock()
	c.closed = true
	stops := c.stops
	c.stops = nil
	c.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

// startStream runs one stream setup on the server: invoke the handler,
// register the stop func, acknowledge. Runs on a dispatch goroutine of
// serveBinary under the connection's inflight/sem accounting.
func (s *TCPServer) startStream(id uint64, h StreamHandler, method string, body []byte, writeCh chan<- []byte, done <-chan struct{}, cs *connStreams) {
	send := func(payload []byte) error {
		frame := appendFrame(getFrameBuf(), frameKindEvent, id, payload)
		select {
		case writeCh <- frame:
			return nil
		case <-done:
			putFrameBuf(frame)
			return ErrConnBroken
		}
	}
	stop, err := h(method, body, send)
	if err != nil {
		cs.forget(id)
		frame := appendResponseFrame(getFrameBuf(), id, err.Error(), nil)
		select {
		case writeCh <- frame:
		case <-done:
			putFrameBuf(frame)
		}
		return
	}
	if !cs.add(id, stop) {
		// The connection died — or the client's cancel frame arrived —
		// between dispatch and registration; the teardown sweep and the
		// cancel path can no longer see this stream, so end it here.
		stop()
		return
	}
	frame := appendResponseFrame(getFrameBuf(), id, "", nil)
	select {
	case writeCh <- frame:
	case <-done:
		putFrameBuf(frame)
	}
}

// ClientStream is the client handle of one open event stream. Events are
// delivered to the onEvent callback passed to TCPClient.Stream,
// synchronously on the connection's read loop — the callback must be
// fast and must not call back into the client, and the payload slice is
// owned by the callback (freshly allocated per frame).
type ClientStream struct {
	onEvent func([]byte)

	mu        sync.Mutex
	err       error
	done      chan struct{}
	once      sync.Once
	closeOnce sync.Once
	closeFn   func()
}

// Done is closed when the stream ends, by either side.
func (cs *ClientStream) Done() <-chan struct{} { return cs.done }

// Err reports why the stream ended: nil after a local Close,
// ErrConnBroken when the connection died under it. Valid after Done.
func (cs *ClientStream) Err() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.err
}

// Close ends the stream: events stop being delivered immediately, and a
// cancel frame is sent so the server stops the subscription promptly
// instead of pushing discarded events until the connection dies. The
// connection itself survives — Close is safe on a stream sharing a
// pooled connection with ordinary calls.
func (cs *ClientStream) Close() {
	cs.closeOnce.Do(cs.closeFn)
	cs.finish(nil)
}

func (cs *ClientStream) finish(err error) {
	cs.once.Do(func() {
		cs.mu.Lock()
		cs.err = err
		cs.mu.Unlock()
		close(cs.done)
	})
}

// Stream opens an event stream for (service, method) on one pooled
// connection and delivers every event payload to onEvent (see
// ClientStream for the callback contract). The call blocks until the
// server acknowledges the subscription (bounded by the client's per-call
// timeout); setup errors surface as RemoteError exactly like a failed
// call. Requires protocol v2 — legacy gob pool slots return
// ErrStreamUnsupported.
func (c *TCPClient) Stream(service, method string, body []byte, onEvent func([]byte)) (*ClientStream, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("stream %s.%s on closed client: %w", service, method, ErrConnBroken)
	}
	p := c.pool[c.next.Add(1)%uint64(len(c.pool))]
	m, ok := p.(*muxConn)
	if !ok {
		return nil, fmt.Errorf("stream %s.%s: %w", service, method, ErrStreamUnsupported)
	}
	return m.stream(service, method, body, onEvent)
}

func (m *muxConn) stream(service, method string, body []byte, onEvent func([]byte)) (*ClientStream, error) {
	m.mu.Lock()
	st := m.cur
	if st == nil {
		var err error
		st, err = m.redialLocked()
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	id := m.cli.nextID.Add(1)
	ch := make(chan muxResult, 1)
	st.pending[id] = ch
	// sendCancel tells the server to end this stream's subscription. Best
	// effort: if the connection is already gone the server-side stop ran
	// (or will run) with the connection teardown anyway.
	sendCancel := func() {
		frame := appendFrame(getFrameBuf(), frameKindCancel, id)
		select {
		case st.writeCh <- frame:
		case <-st.done:
			putFrameBuf(frame)
		}
	}
	cs := &ClientStream{onEvent: onEvent, done: make(chan struct{})}
	cs.closeFn = func() {
		m.mu.Lock()
		if st.streams != nil {
			delete(st.streams, id)
		}
		m.mu.Unlock()
		sendCancel()
	}
	if st.streams == nil {
		st.streams = make(map[uint64]*ClientStream)
	}
	st.streams[id] = cs
	m.mu.Unlock()

	deregister := func() {
		m.mu.Lock()
		delete(st.pending, id)
		if st.streams != nil {
			delete(st.streams, id)
		}
		m.mu.Unlock()
	}

	frame := appendRequestFrame(getFrameBuf(), id, service, method, body)
	select {
	case st.writeCh <- frame:
	case <-st.done:
		deregister()
		return nil, fmt.Errorf("send %s.%s: %w", service, method, ErrConnBroken)
	}

	var timeoutCh <-chan time.Time
	if t := m.cli.timeout; t > 0 {
		timer := time.NewTimer(t)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		if res.broken {
			// fail(st) already finished cs with ErrConnBroken.
			return nil, fmt.Errorf("subscribe %s.%s: %w", service, method, ErrConnBroken)
		}
		if res.isErr {
			deregister()
			return nil, &RemoteError{Service: service, Method: method, Msg: res.errMsg}
		}
		return cs, nil
	case <-timeoutCh:
		// The server may still establish the subscription after this
		// deadline; the cancel frame ends it (immediately, or the moment
		// its racing setup registers) so an abandoned stream never keeps
		// pushing events at a client that stopped listening.
		deregister()
		sendCancel()
		return nil, fmt.Errorf("%s.%s after %v: %w", service, method, m.cli.timeout, ErrCallTimeout)
	}
}
