package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Server→client event streams over the protocol-v2 framing.
//
// A stream is opened by an ordinary request frame whose (service, method)
// pair was registered with RegisterStream instead of Register. The server
// runs the StreamHandler to set the subscription up, acknowledges with an
// empty response frame (or an error response if setup failed), and from
// then on pushes frameKindEvent frames carrying opaque payloads, all
// tagged with the id of the opening request. Events share the
// connection's single coalescing writer with ordinary responses, so a
// stream never reorders or blocks concurrent calls on the same
// connection beyond the usual write-queue backpressure.
//
// Lifecycle: the stream lives until the client closes it (tearing the
// connection down — the edge feed dedicates a connection to its stream
// precisely so Close is cheap and unambiguous) or the connection dies for
// any reason, at which point the server invokes the handler's stop func.
// There is no per-stream unsubscribe message: the intended consumers are
// long-lived subscriptions whose teardown coincides with connection
// teardown, and conflating the two keeps the wire protocol at exactly
// one new frame kind.
//
// Ordering note: an event frame may legally arrive before the ack
// response (the subscription is live from the moment the handler
// returns). Clients register their event callback before sending the
// opening request, so early events are delivered, not dropped.

// ErrStreamUnsupported is returned by TCPClient.Stream when the pool slot
// speaks the legacy gob protocol (v1), which has no event framing.
var ErrStreamUnsupported = errors.New("rpc: event streams require protocol v2")

// StreamHandler sets up one server-side stream subscription. It is called
// on the connection's dispatch path with the opening request's method and
// body (valid only until the handler returns — copy anything retained)
// and a send func that pushes one event frame to the client. send is safe
// for concurrent use and returns ErrConnBroken once the connection is
// gone; the handler must arrange its own decoupling (e.g. a PeerQueue) if
// its event source must never block on a slow client. On success the
// handler returns a stop func, invoked exactly once when the stream ends.
type StreamHandler func(method string, body []byte, send func([]byte) error) (stop func(), err error)

// RegisterStream installs a stream handler for (service, method). Stream
// registrations are keyed by both names and take priority over a Register
// handler for the same service, for those two names only.
func (s *TCPServer) RegisterStream(service, method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.streams == nil {
		s.streams = make(map[string]StreamHandler)
	}
	s.streams[service+"\x00"+method] = h
}

// streamHandler looks up a stream registration; nil means (service,
// method) dispatches as an ordinary call.
func (s *TCPServer) streamHandler(service, method string) StreamHandler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.streams[service+"\x00"+method]
}

// connStreams tracks the live streams of one server connection so
// teardown can run every stop func exactly once, even against a
// concurrent setup racing the connection's death.
type connStreams struct {
	mu     sync.Mutex
	stops  map[uint64]func()
	closed bool
}

// add registers a stream's stop func; false means the connection is
// already tearing down and the caller must invoke stop itself.
func (c *connStreams) add(id uint64, stop func()) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if c.stops == nil {
		c.stops = make(map[uint64]func())
	}
	c.stops[id] = stop
	return true
}

// stopAll ends every live stream and refuses later adds. Runs after the
// connection's dispatch goroutines drained but while its writer is still
// alive, so a stop func may flush queued events without deadlocking.
func (c *connStreams) stopAll() {
	c.mu.Lock()
	c.closed = true
	stops := c.stops
	c.stops = nil
	c.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

// startStream runs one stream setup on the server: invoke the handler,
// register the stop func, acknowledge. Runs on a dispatch goroutine of
// serveBinary under the connection's inflight/sem accounting.
func (s *TCPServer) startStream(id uint64, h StreamHandler, method string, body []byte, writeCh chan<- []byte, done <-chan struct{}, cs *connStreams) {
	send := func(payload []byte) error {
		frame := appendFrame(getFrameBuf(), frameKindEvent, id, payload)
		select {
		case writeCh <- frame:
			return nil
		case <-done:
			putFrameBuf(frame)
			return ErrConnBroken
		}
	}
	stop, err := h(method, body, send)
	if err != nil {
		frame := appendResponseFrame(getFrameBuf(), id, err.Error(), nil)
		select {
		case writeCh <- frame:
		case <-done:
			putFrameBuf(frame)
		}
		return
	}
	if !cs.add(id, stop) {
		// The connection died between dispatch and registration; the
		// teardown sweep can no longer see this stream, so end it here.
		stop()
		return
	}
	frame := appendResponseFrame(getFrameBuf(), id, "", nil)
	select {
	case writeCh <- frame:
	case <-done:
		putFrameBuf(frame)
	}
}

// ClientStream is the client handle of one open event stream. Events are
// delivered to the onEvent callback passed to TCPClient.Stream,
// synchronously on the connection's read loop — the callback must be
// fast and must not call back into the client, and the payload slice is
// owned by the callback (freshly allocated per frame).
type ClientStream struct {
	onEvent func([]byte)

	mu      sync.Mutex
	err     error
	done    chan struct{}
	once    sync.Once
	closeFn func()
}

// Done is closed when the stream ends, by either side.
func (cs *ClientStream) Done() <-chan struct{} { return cs.done }

// Err reports why the stream ended: nil after a local Close,
// ErrConnBroken when the connection died under it. Valid after Done.
func (cs *ClientStream) Err() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.err
}

// Close ends the stream locally: events stop being delivered immediately.
// The server-side stop func runs when the connection tears down — callers
// that want prompt server-side cleanup close the owning TCPClient (the
// edge feed dedicates a client to its stream for exactly this reason).
func (cs *ClientStream) Close() {
	cs.closeFn()
	cs.finish(nil)
}

func (cs *ClientStream) finish(err error) {
	cs.once.Do(func() {
		cs.mu.Lock()
		cs.err = err
		cs.mu.Unlock()
		close(cs.done)
	})
}

// Stream opens an event stream for (service, method) on one pooled
// connection and delivers every event payload to onEvent (see
// ClientStream for the callback contract). The call blocks until the
// server acknowledges the subscription (bounded by the client's per-call
// timeout); setup errors surface as RemoteError exactly like a failed
// call. Requires protocol v2 — legacy gob pool slots return
// ErrStreamUnsupported.
func (c *TCPClient) Stream(service, method string, body []byte, onEvent func([]byte)) (*ClientStream, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("stream %s.%s on closed client: %w", service, method, ErrConnBroken)
	}
	p := c.pool[c.next.Add(1)%uint64(len(c.pool))]
	m, ok := p.(*muxConn)
	if !ok {
		return nil, fmt.Errorf("stream %s.%s: %w", service, method, ErrStreamUnsupported)
	}
	return m.stream(service, method, body, onEvent)
}

func (m *muxConn) stream(service, method string, body []byte, onEvent func([]byte)) (*ClientStream, error) {
	m.mu.Lock()
	st := m.cur
	if st == nil {
		var err error
		st, err = m.redialLocked()
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	id := m.cli.nextID.Add(1)
	ch := make(chan muxResult, 1)
	st.pending[id] = ch
	cs := &ClientStream{onEvent: onEvent, done: make(chan struct{})}
	cs.closeFn = func() {
		m.mu.Lock()
		if st.streams != nil {
			delete(st.streams, id)
		}
		m.mu.Unlock()
	}
	if st.streams == nil {
		st.streams = make(map[uint64]*ClientStream)
	}
	st.streams[id] = cs
	m.mu.Unlock()

	deregister := func() {
		m.mu.Lock()
		delete(st.pending, id)
		if st.streams != nil {
			delete(st.streams, id)
		}
		m.mu.Unlock()
	}

	frame := appendRequestFrame(getFrameBuf(), id, service, method, body)
	select {
	case st.writeCh <- frame:
	case <-st.done:
		deregister()
		return nil, fmt.Errorf("send %s.%s: %w", service, method, ErrConnBroken)
	}

	var timeoutCh <-chan time.Time
	if t := m.cli.timeout; t > 0 {
		timer := time.NewTimer(t)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		if res.broken {
			// fail(st) already finished cs with ErrConnBroken.
			return nil, fmt.Errorf("subscribe %s.%s: %w", service, method, ErrConnBroken)
		}
		if res.isErr {
			deregister()
			return nil, &RemoteError{Service: service, Method: method, Msg: res.errMsg}
		}
		return cs, nil
	case <-timeoutCh:
		deregister()
		return nil, fmt.Errorf("%s.%s after %v: %w", service, method, m.cli.timeout, ErrCallTimeout)
	}
}
