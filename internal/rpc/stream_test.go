package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectStream opens a stream that appends every event payload to a
// shared slice, returning the handle and an accessor.
func collectStream(t *testing.T, cli *TCPClient, service, method string, body []byte) (*ClientStream, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var got []string
	cs, err := cli.Stream(service, method, body, func(p []byte) {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestStreamDeliversEvents(t *testing.T) {
	srv, addr := startServer(t)
	srv.RegisterStream("feed", "subscribe", func(method string, body []byte, send func([]byte) error) (func(), error) {
		prefix := string(body) // body is only valid during setup; copy it
		go func() {
			for i := 0; i < 5; i++ {
				if err := send([]byte(fmt.Sprintf("%s-%d", prefix, i))); err != nil {
					return
				}
			}
		}()
		return func() {}, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, got := collectStream(t, cli, "feed", "subscribe", []byte("ev"))
	waitFor(t, "5 events", func() bool { return len(got()) == 5 })
	for i, s := range got() {
		if want := fmt.Sprintf("ev-%d", i); s != want {
			t.Errorf("event[%d] = %q, want %q", i, s, want)
		}
	}
}

func TestStreamStopRunsOnClientClose(t *testing.T) {
	srv, addr := startServer(t)
	var stopped atomic.Bool
	srv.RegisterStream("feed", "subscribe", func(string, []byte, func([]byte) error) (func(), error) {
		return func() { stopped.Store(true) }, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := collectStream(t, cli, "feed", "subscribe", nil)
	cli.Close() //nolint:errcheck
	waitFor(t, "server-side stop", stopped.Load)
	<-cs.Done()
	if !errors.Is(cs.Err(), ErrConnBroken) {
		t.Errorf("Err() = %v, want ErrConnBroken", cs.Err())
	}
}

func TestStreamStopRunsOnServerClose(t *testing.T) {
	srv, addr := startServer(t)
	var stopped atomic.Bool
	srv.RegisterStream("feed", "subscribe", func(string, []byte, func([]byte) error) (func(), error) {
		return func() { stopped.Store(true) }, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	cs, _ := collectStream(t, cli, "feed", "subscribe", nil)
	srv.Close()
	waitFor(t, "server-side stop", stopped.Load)
	select {
	case <-cs.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stream not finished after server close")
	}
	if !errors.Is(cs.Err(), ErrConnBroken) {
		t.Errorf("Err() = %v, want ErrConnBroken", cs.Err())
	}
}

func TestStreamLocalCloseStopsDelivery(t *testing.T) {
	srv, addr := startServer(t)
	release := make(chan struct{})
	srv.RegisterStream("feed", "subscribe", func(_ string, _ []byte, send func([]byte) error) (func(), error) {
		go func() {
			send([]byte("early")) //nolint:errcheck
			<-release
			send([]byte("late")) //nolint:errcheck
		}()
		return func() {}, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	cs, got := collectStream(t, cli, "feed", "subscribe", nil)
	waitFor(t, "first event", func() bool { return len(got()) == 1 })
	cs.Close()
	<-cs.Done()
	if cs.Err() != nil {
		t.Errorf("Err() after local close = %v, want nil", cs.Err())
	}
	close(release)
	// The late event is dropped by the demux (counted unmatched), never
	// delivered. Issue a round-trip call to flush the pipe before
	// asserting.
	srv.Register("svc", func(string, []byte) ([]byte, error) { return nil, nil })
	if _, err := cli.Call("svc", "ping", nil); err != nil {
		t.Fatal(err)
	}
	if evs := got(); len(evs) != 1 {
		t.Errorf("events after close = %v, want just [early]", evs)
	}
}

// TestStreamCloseStopsServerSubscription: Close must end the server-side
// subscription promptly via the cancel frame — not leave it encoding and
// pushing discarded events until the (possibly shared, pooled)
// connection dies — while the connection itself stays usable.
func TestStreamCloseStopsServerSubscription(t *testing.T) {
	srv, addr := startServer(t)
	var stopped atomic.Bool
	srv.RegisterStream("feed", "subscribe", func(string, []byte, func([]byte) error) (func(), error) {
		return func() { stopped.Store(true) }, nil
	})
	srv.Register("svc", func(string, []byte) ([]byte, error) { return nil, nil })
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	cs, _ := collectStream(t, cli, "feed", "subscribe", nil)
	cs.Close()
	cs.Close() // idempotent: one cancel frame, not two
	waitFor(t, "server-side stop after Close", stopped.Load)
	if _, err := cli.Call("svc", "ping", nil); err != nil {
		t.Fatalf("connection unusable after stream close: %v", err)
	}
}

// TestStreamTimeoutCancelsRacingSetup: a subscribe abandoned by the
// per-call timeout sends its cancel before the slow server-side setup
// completes; the subscription must be stopped the moment the handler
// returns it instead of living on unobserved.
func TestStreamTimeoutCancelsRacingSetup(t *testing.T) {
	srv, addr := startServer(t)
	release := make(chan struct{})
	var stopped atomic.Bool
	srv.RegisterStream("feed", "subscribe", func(string, []byte, func([]byte) error) (func(), error) {
		<-release
		return func() { stopped.Store(true) }, nil
	})
	cli, err := DialTCP(addr, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, err = cli.Stream("feed", "subscribe", nil, func([]byte) {})
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	close(release)
	waitFor(t, "abandoned subscription stopped", stopped.Load)
}

func TestStreamSetupError(t *testing.T) {
	srv, addr := startServer(t)
	srv.RegisterStream("feed", "subscribe", func(string, []byte, func([]byte) error) (func(), error) {
		return nil, errors.New("no such topic")
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, err = cli.Stream("feed", "subscribe", nil, func([]byte) {})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want RemoteError", err, err)
	}
}

func TestStreamUnsupportedOnGob(t *testing.T) {
	_, addr := startServer(t)
	cli, err := DialTCPGob(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, err = cli.Stream("feed", "subscribe", nil, func([]byte) {})
	if !errors.Is(err, ErrStreamUnsupported) {
		t.Fatalf("err = %v, want ErrStreamUnsupported", err)
	}
}

func TestStreamCoexistsWithCalls(t *testing.T) {
	srv, addr := startServer(t)
	srv.RegisterStream("feed", "subscribe", func(_ string, _ []byte, send func([]byte) error) (func(), error) {
		stop := make(chan struct{})
		go func() {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := send([]byte(fmt.Sprintf("e%d", i))); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		var once sync.Once
		return func() { once.Do(func() { close(stop) }) }, nil
	})
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		return body, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, got := collectStream(t, cli, "feed", "subscribe", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := []byte(fmt.Sprintf("w%d-%d", w, i))
				out, err := cli.Call("svc", "echo", body)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if string(out) != string(body) {
					t.Errorf("echo = %q, want %q", out, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	waitFor(t, "stream events alongside calls", func() bool { return len(got()) >= 3 })
}
