package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// wireRequest and wireResponse are the gob frames exchanged by the TCP
// transport. Err distinguishes transport-visible handler failures.
type wireRequest struct {
	ID      uint64
	Service string
	Method  string
	Body    []byte
}

type wireResponse struct {
	ID   uint64
	Body []byte
	Err  string
}

// TCPServer serves registered handlers over a net.Listener. One goroutine
// per connection; requests on a connection are handled sequentially, which
// is sufficient for the demo deployment (cmd/oasisd).
type TCPServer struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool
	conns    map[net.Conn]struct{}
}

// NewTCPServer creates a server with no handlers.
func NewTCPServer() *TCPServer {
	return &TCPServer{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs the handler for a service name.
func (s *TCPServer) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// Serve accepts connections on ln until Close. It returns after the
// listener fails (normally because Close closed it).
func (s *TCPServer) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Service]
		s.mu.RUnlock()
		resp := wireResponse{ID: req.ID}
		if !ok {
			resp.Err = ErrUnknownService.Error() + ": " + req.Service
		} else if out, err := h(req.Method, req.Body); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = out
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections and waits for connection
// goroutines to finish.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
}

// TCPClient issues calls over a single TCP connection. It is safe for
// concurrent use; calls are serialised on the connection.
type TCPClient struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	nextID  uint64
	timeout time.Duration
}

var _ Caller = (*TCPClient)(nil)

// DialTCP connects to a TCPServer. timeout bounds each call round trip
// (zero means no deadline).
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return &TCPClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: timeout,
	}, nil
}

// Call implements Caller.
func (c *TCPClient) Call(service, method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := wireRequest{ID: c.nextID, Service: service, Method: method, Body: body}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("set deadline: %w", err)
		}
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("send %s.%s: %w", service, method, err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("connection closed during %s.%s: %w", service, method, err)
		}
		return nil, fmt.Errorf("receive %s.%s: %w", service, method, err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return nil, &RemoteError{Service: service, Method: method, Msg: resp.Err}
	}
	return resp.Body, nil
}

// Close closes the underlying connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
