package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// wireRequest and wireResponse are the gob frames exchanged by the TCP
// transport. Err distinguishes transport-visible handler failures.
type wireRequest struct {
	ID      uint64
	Service string
	Method  string
	Body    []byte
}

type wireResponse struct {
	ID   uint64
	Body []byte
	Err  string
}

// maxInflightPerConn bounds concurrently dispatched handlers per
// connection so one pipelining client cannot exhaust the server.
const maxInflightPerConn = 64

// TCPServer serves registered handlers over a net.Listener. One goroutine
// per connection reads requests; each request is dispatched on its own
// goroutine so a slow handler does not head-of-line block the connection,
// and response writes are serialised on a per-connection mutex (responses
// may therefore arrive out of request order — clients match on ID).
type TCPServer struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool
	conns    map[net.Conn]struct{}
}

// NewTCPServer creates a server with no handlers.
func NewTCPServer() *TCPServer {
	return &TCPServer{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs the handler for a service name.
func (s *TCPServer) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// Serve accepts connections on ln until Close. It returns after the
// listener fails (normally because Close closed it).
func (s *TCPServer) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var inflight sync.WaitGroup
	defer func() {
		inflight.Wait()
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex // serialises response writes across handler goroutines
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Service]
		s.mu.RUnlock()
		sem <- struct{}{}
		inflight.Add(1)
		go func(req wireRequest, h Handler, ok bool) {
			defer func() { <-sem; inflight.Done() }()
			resp := wireResponse{ID: req.ID}
			if !ok {
				resp.Err = ErrUnknownService.Error() + ": " + req.Service
			} else if out, err := h(req.Method, req.Body); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = out
			}
			wmu.Lock()
			defer wmu.Unlock()
			// A write failure means the connection is going away; the
			// read loop will observe the same failure and tear down.
			enc.Encode(resp) //nolint:errcheck
		}(req, h, ok)
	}
}

// Close stops accepting, closes open connections and waits for connection
// goroutines to finish.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
}

// defaultDialTimeout bounds connection establishment when the client has
// no per-call budget of its own.
const defaultDialTimeout = 5 * time.Second

// Redial backoff bounds: consecutive dial failures back off exponentially
// between these, so a dead peer is not hammered while a recovered one is
// picked up within a bounded window.
const (
	redialBackoffBase = 10 * time.Millisecond
	redialBackoffMax  = 1 * time.Second
)

// TCPClient issues calls over a small pool of TCP connections to one
// server. It is safe for concurrent use: calls are spread round-robin over
// the pool (removing head-of-line blocking between concurrent callers),
// with at most one in-flight call per connection.
//
// The client is self-healing: any encode, decode, or deadline failure
// marks that connection broken — a late response would otherwise desync
// the shared gob stream and poison every later call — and the next call on
// the slot transparently redials with bounded exponential backoff.
type TCPClient struct {
	addr        string
	timeout     time.Duration // per-call round-trip budget; 0 = none
	dialTimeout time.Duration

	nextID atomic.Uint64 // client-global so IDs never repeat across redials
	next   atomic.Uint64 // round-robin pool cursor
	pool   []*tcpConn
	closed atomic.Bool
}

var _ Caller = (*TCPClient)(nil)

// tcpConn is one pool slot: a connection with its gob codec pair and the
// redial backoff state left by previous failures. conn == nil means the
// slot is disconnected and the next call dials.
type tcpConn struct {
	cli *TCPClient

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	dialFails int
	nextDial  time.Time
}

// DialTCP connects to a TCPServer with a single pooled connection. timeout
// bounds each call round trip and, when set, connection establishment too
// (zero means no call deadline and a default dial timeout).
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	return DialTCPPool(addr, timeout, 1)
}

// DialTCPPool connects to a TCPServer with size pooled connections. The
// first connection is dialled eagerly so configuration errors surface
// immediately; the rest are dialled lazily on demand.
func DialTCPPool(addr string, timeout time.Duration, size int) (*TCPClient, error) {
	if size < 1 {
		size = 1
	}
	dialTimeout := timeout
	if dialTimeout <= 0 {
		dialTimeout = defaultDialTimeout
	}
	c := &TCPClient{addr: addr, timeout: timeout, dialTimeout: dialTimeout}
	c.pool = make([]*tcpConn, size)
	for i := range c.pool {
		c.pool[i] = &tcpConn{cli: c}
	}
	if err := c.pool[0].redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Call implements Caller.
func (c *TCPClient) Call(service, method string, body []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("call %s.%s on closed client: %w", service, method, ErrConnBroken)
	}
	p := c.pool[c.next.Add(1)%uint64(len(c.pool))]
	return p.roundTrip(service, method, body)
}

// Close closes all pooled connections; subsequent calls fail.
func (c *TCPClient) Close() error {
	c.closed.Store(true)
	var first error
	for _, p := range c.pool {
		p.mu.Lock()
		if p.conn != nil {
			if err := p.conn.Close(); err != nil && first == nil {
				first = err
			}
			p.conn, p.enc, p.dec = nil, nil, nil
		}
		p.mu.Unlock()
	}
	return first
}

// redialLocked (re)establishes the slot's connection, honouring the
// backoff window left by previous dial failures. Called with p.mu held
// (or before the client is shared).
func (p *tcpConn) redialLocked() error {
	if wait := time.Until(p.nextDial); wait > 0 {
		time.Sleep(wait)
	}
	conn, err := net.DialTimeout("tcp", p.cli.addr, p.cli.dialTimeout)
	if err != nil {
		p.dialFails++
		backoff := redialBackoffBase << uint(min(p.dialFails-1, 10))
		if backoff > redialBackoffMax {
			backoff = redialBackoffMax
		}
		p.nextDial = time.Now().Add(backoff)
		return fmt.Errorf("dial %s: %w", p.cli.addr, err)
	}
	p.dialFails = 0
	p.nextDial = time.Time{}
	p.conn = conn
	p.enc = gob.NewEncoder(conn)
	p.dec = gob.NewDecoder(conn)
	return nil
}

// breakLocked discards a connection whose stream state is no longer
// trustworthy. Called with p.mu held.
func (p *tcpConn) breakLocked() {
	if p.conn != nil {
		p.conn.Close() //nolint:errcheck
	}
	p.conn, p.enc, p.dec = nil, nil, nil
}

func (p *tcpConn) roundTrip(service, method string, body []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if err := p.redialLocked(); err != nil {
			return nil, err
		}
	}
	req := wireRequest{ID: p.cli.nextID.Add(1), Service: service, Method: method, Body: body}
	if t := p.cli.timeout; t > 0 {
		if err := p.conn.SetDeadline(time.Now().Add(t)); err != nil {
			p.breakLocked()
			return nil, fmt.Errorf("set deadline for %s.%s: %w", service, method, ErrConnBroken)
		}
	}
	if err := p.enc.Encode(req); err != nil {
		p.breakLocked()
		return nil, fmt.Errorf("send %s.%s: %v: %w", service, method, err, ErrConnBroken)
	}
	var resp wireResponse
	if err := p.dec.Decode(&resp); err != nil {
		// The response may still arrive later (slow handler) or never;
		// either way undecoded frames would desync the stream, so the
		// connection can never be trusted again.
		p.breakLocked()
		return nil, fmt.Errorf("receive %s.%s: %v: %w", service, method, err, ErrConnBroken)
	}
	if resp.ID != req.ID {
		// A skewed frame (e.g. the answer to an abandoned request):
		// resynchronising is impossible without framing guarantees, so
		// drop the connection.
		p.breakLocked()
		return nil, fmt.Errorf("%s.%s: response id %d for request %d: %w",
			service, method, resp.ID, req.ID, ErrConnBroken)
	}
	if t := p.cli.timeout; t > 0 {
		// Clear the per-call deadline so the idle connection does not
		// expire it later and surface a spurious i/o timeout on reuse.
		if err := p.conn.SetDeadline(time.Time{}); err != nil {
			p.breakLocked()
		}
	}
	if resp.Err != "" {
		return nil, &RemoteError{Service: service, Method: method, Msg: resp.Err}
	}
	return resp.Body, nil
}
