package rpc

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// wireRequest and wireResponse are the gob frames exchanged by the legacy
// (protocol v1) TCP transport. Err distinguishes transport-visible handler
// failures.
type wireRequest struct {
	ID      uint64
	Service string
	Method  string
	Body    []byte
}

type wireResponse struct {
	ID   uint64
	Body []byte
	Err  string
}

// maxInflightPerConn bounds concurrently dispatched handlers per
// connection so one pipelining client cannot exhaust the server.
const maxInflightPerConn = 64

// writeQueueDepth is the per-connection frame write queue: deep enough
// that a burst of concurrent callers keeps the writer goroutine fed (and
// coalescing), shallow enough that a stalled peer exerts backpressure
// instead of buffering without bound.
const writeQueueDepth = 64

// wireBufSize sizes the buffered reader/writer on each connection; writes
// below it coalesce into one socket write per writer-goroutine wakeup.
const wireBufSize = 32 << 10

// wireMetrics carries the wire-level observability handles. The fields
// are atomic pointers (so Instrument may race with live traffic) to
// nil-safe obs handles (so an uninstrumented transport pays one nil check
// per update).
type wireMetrics struct {
	bytesSent       atomic.Pointer[obs.Counter]
	bytesReceived   atomic.Pointer[obs.Counter]
	framesCoalesced atomic.Pointer[obs.Counter]
	unmatched       atomic.Pointer[obs.Counter]
}

// instrument resolves the wire counters under a side label ("client" or
// "server") so one registry can carry both ends of a loopback deployment.
func (m *wireMetrics) instrument(reg *obs.Registry, side string) {
	label := fmt.Sprintf("{side=%q}", side)
	m.bytesSent.Store(reg.Counter("rpc_bytes_sent_total" + label))
	m.bytesReceived.Store(reg.Counter("rpc_bytes_received_total" + label))
	m.framesCoalesced.Store(reg.Counter("rpc_frames_coalesced_total" + label))
	m.unmatched.Store(reg.Counter("rpc_responses_unmatched_total" + label))
}

// countingConn counts the bytes crossing the socket boundary (i.e. after
// any buffering), attributing them to the owning transport's metrics.
type countingConn struct {
	net.Conn
	m *wireMetrics
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.bytesReceived.Load().Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.bytesSent.Load().Add(uint64(n))
	return n, err
}

// runFrameWriter is the shared per-connection writer goroutine body: it
// drains writeCh into a buffered writer, coalescing every frame already
// queued into a single flush (one syscall for a burst of small frames),
// and tears the connection down through onErr on the first write failure.
func runFrameWriter(conn net.Conn, writeCh <-chan []byte, done <-chan struct{}, m *wireMetrics, onErr func()) {
	bw := bufio.NewWriterSize(conn, wireBufSize)
	for {
		select {
		case buf := <-writeCh:
			coalesced := uint64(0)
			for {
				_, err := bw.Write(buf)
				putFrameBuf(buf)
				if err != nil {
					onErr()
					return
				}
				select {
				case buf = <-writeCh:
					coalesced++
					continue
				default:
				}
				break
			}
			if coalesced > 0 {
				m.framesCoalesced.Load().Add(coalesced)
			}
			if err := bw.Flush(); err != nil {
				onErr()
				return
			}
		case <-done:
			return
		}
	}
}

// TCPServer serves registered handlers over a net.Listener. It speaks
// both wire protocols: the pipelined binary framing of frame.go (new
// clients, detected by the connection preamble) and the legacy gob
// request/response stream (old clients). In both, each request is
// dispatched on its own goroutine so a slow handler does not
// head-of-line block the connection, and responses may arrive out of
// request order — clients match on ID.
type TCPServer struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	streams  map[string]StreamHandler // keyed service+"\x00"+method; see stream.go
	ln       net.Listener
	wg       sync.WaitGroup
	closed   bool
	conns    map[net.Conn]struct{}
	metrics  wireMetrics
}

// NewTCPServer creates a server with no handlers.
func NewTCPServer() *TCPServer {
	return &TCPServer{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Instrument registers the server's wire-level byte and coalescing
// counters with reg (side="server"). Call before Serve.
func (s *TCPServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics.instrument(reg, "server")
}

// Register installs the handler for a service name.
func (s *TCPServer) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// Serve accepts connections on ln until Close. It returns nil after
// Close tears the listener down, and the accept error when the listener
// failed on its own — a daemon must surface that instead of hanging
// around deaf (an earlier oasisd discarded it and kept running).
func (s *TCPServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn sniffs the client's protocol from the first byte and serves
// the matching loop. Gob streams never begin with 0x00 (see frame.go), so
// the discriminator is unambiguous.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cc := countingConn{Conn: conn, m: &s.metrics}
	br := bufio.NewReaderSize(cc, wireBufSize)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == frameProtoByte {
		s.serveBinary(cc, br)
		return
	}
	s.serveGob(cc, br)
}

// handle runs the handler lookup + invocation for one request and
// returns the response body or error text.
func (s *TCPServer) handle(service, method string, body []byte) (out []byte, errMsg string) {
	s.mu.RLock()
	h, ok := s.handlers[service]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownService.Error() + ": " + service
	}
	out, err := h(method, body)
	if err != nil {
		return nil, err.Error()
	}
	return out, ""
}

// serveBinary is the protocol-v2 connection loop: demux-free on the read
// side (requests are independent), concurrent dispatch bounded by
// maxInflightPerConn, responses funnelled through one coalescing writer
// goroutine.
func (s *TCPServer) serveBinary(conn net.Conn, br *bufio.Reader) {
	var pre [4]byte
	if _, err := br.Read(pre[:1]); err != nil { // the peeked discriminator
		return
	}
	if _, err := br.Read(pre[1:]); err != nil || checkPreamble(pre[1:]) != nil {
		return
	}
	writeCh := make(chan []byte, writeQueueDepth)
	done := make(chan struct{})
	var closeOnce sync.Once
	stop := func() { closeOnce.Do(func() { close(done) }) }
	defer stop()
	// Stream teardown runs after the dispatch goroutines drain (a racing
	// setup must have registered or self-stopped) but before the writer
	// stops, so a stop func can still flush queued events (defers below
	// run LIFO).
	var streams connStreams
	defer streams.stopAll()
	go runFrameWriter(conn, writeCh, done, &s.metrics, stop)

	var inflight sync.WaitGroup
	defer inflight.Wait()
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		kind, id, payload, reqFrame, err := readFrameInto(br, getFrameBuf())
		if err != nil {
			return
		}
		if kind == frameKindCancel {
			// End the stream opened by request id. The stop func may
			// block draining queued events, so it dispatches like a
			// handler instead of stalling the read loop.
			putFrameBuf(reqFrame)
			if stop := streams.cancel(id); stop != nil {
				sem <- struct{}{}
				inflight.Add(1)
				go func() {
					defer func() { <-sem; inflight.Done() }()
					stop()
				}()
			}
			continue
		}
		if kind != frameKindRequest {
			return
		}
		service, method, body, err := parseRequest(payload)
		if err != nil {
			return
		}
		if sh := s.streamHandler(service, method); sh != nil {
			sem <- struct{}{}
			inflight.Add(1)
			go func(id uint64, method string, body, reqFrame []byte) {
				defer func() { <-sem; inflight.Done() }()
				s.startStream(id, sh, method, body, writeCh, done, &streams)
				putFrameBuf(reqFrame)
			}(id, method, body, reqFrame)
			continue
		}
		sem <- struct{}{}
		inflight.Add(1)
		go func(id uint64, service, method string, body, reqFrame []byte) {
			defer func() { <-sem; inflight.Done() }()
			out, errMsg := s.handle(service, method, body)
			frame := appendResponseFrame(getFrameBuf(), id, errMsg, out)
			// The response frame holds a copy of out, so even a handler
			// that echoed (aliased) the request body is done with the
			// request frame now; recycle it for a later read.
			putFrameBuf(reqFrame)
			select {
			case writeCh <- frame:
			case <-done:
			}
		}(id, service, method, body, reqFrame)
	}
}

// serveGob is the legacy protocol-v1 loop: a shared gob stream with
// serialized response writes (kept for rolling compatibility with old
// clients; see DESIGN.md §11).
func (s *TCPServer) serveGob(conn net.Conn, br *bufio.Reader) {
	var inflight sync.WaitGroup
	defer inflight.Wait()
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex // serialises response writes across handler goroutines
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		sem <- struct{}{}
		inflight.Add(1)
		go func(req wireRequest) {
			defer func() { <-sem; inflight.Done() }()
			resp := wireResponse{ID: req.ID}
			resp.Body, resp.Err = s.handle(req.Service, req.Method, req.Body)
			wmu.Lock()
			defer wmu.Unlock()
			// A write failure means the connection is going away; the
			// read loop will observe the same failure and tear down.
			enc.Encode(resp) //nolint:errcheck
		}(req)
	}
}

// Close stops accepting, closes open connections and waits for connection
// goroutines to finish.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
}

// defaultDialTimeout bounds connection establishment when the client has
// no per-call budget of its own.
const defaultDialTimeout = 5 * time.Second

// Redial backoff bounds: consecutive dial failures back off exponentially
// between these, so a dead peer is not hammered while a recovered one is
// picked up within a bounded window.
const (
	redialBackoffBase = 10 * time.Millisecond
	redialBackoffMax  = 1 * time.Second
)

// poolConn is one slot of a TCPClient's connection pool. Two
// implementations: muxConn (protocol v2, many in-flight calls per
// connection) and tcpConn (legacy gob lockstep, one call at a time).
type poolConn interface {
	roundTrip(service, method string, body []byte) ([]byte, error)
	close() error
}

// TCPClient issues calls over a small pool of TCP connections to one
// server. It is safe for concurrent use: calls are spread round-robin
// over the pool, and (protocol v2) each connection multiplexes many
// in-flight calls by request id, so a slow handler delays only its own
// caller.
//
// The client is self-healing: any dial, write, read, or framing failure
// marks that connection broken and the next call on the slot
// transparently redials with bounded exponential backoff. A per-call
// timeout (protocol v2) abandons only that call — the connection and
// every other in-flight call on it survive, and the late response is
// dropped by the demux when it eventually arrives.
type TCPClient struct {
	addr        string
	timeout     time.Duration // per-call round-trip budget; 0 = none
	dialTimeout time.Duration

	nextID  atomic.Uint64 // client-global so IDs never repeat across redials
	next    atomic.Uint64 // round-robin pool cursor
	pool    []poolConn
	closed  atomic.Bool
	metrics wireMetrics
}

var _ Caller = (*TCPClient)(nil)

// DialTCP connects to a TCPServer with a single pooled connection,
// speaking the pipelined binary framing (protocol v2). timeout bounds
// each call round trip and, when set, connection establishment too (zero
// means no call deadline and a default dial timeout).
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	return DialTCPPool(addr, timeout, 1)
}

// DialTCPPool connects to a TCPServer with size pooled connections
// (protocol v2). The first connection is dialled eagerly so configuration
// errors surface immediately; the rest are dialled lazily on demand.
func DialTCPPool(addr string, timeout time.Duration, size int) (*TCPClient, error) {
	return dialPool(addr, timeout, size, false)
}

// DialTCPGob connects with the legacy lockstep gob protocol (v1): one
// in-flight call per connection, any stream disturbance breaks the
// connection. Kept for rolling compatibility with pre-v2 servers.
func DialTCPGob(addr string, timeout time.Duration) (*TCPClient, error) {
	return dialPool(addr, timeout, 1, true)
}

// DialTCPPoolGob is DialTCPGob with size pooled connections.
func DialTCPPoolGob(addr string, timeout time.Duration, size int) (*TCPClient, error) {
	return dialPool(addr, timeout, size, true)
}

func dialPool(addr string, timeout time.Duration, size int, legacy bool) (*TCPClient, error) {
	if size < 1 {
		size = 1
	}
	dialTimeout := timeout
	if dialTimeout <= 0 {
		dialTimeout = defaultDialTimeout
	}
	c := &TCPClient{addr: addr, timeout: timeout, dialTimeout: dialTimeout}
	c.pool = make([]poolConn, size)
	for i := range c.pool {
		if legacy {
			c.pool[i] = &tcpConn{cli: c}
		} else {
			c.pool[i] = &muxConn{cli: c}
		}
	}
	var err error
	switch p := c.pool[0].(type) {
	case *tcpConn:
		err = p.redialLocked()
	case *muxConn:
		p.mu.Lock()
		_, err = p.redialLocked()
		p.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Instrument registers the client's wire-level byte, coalescing and
// unmatched-response counters with reg (side="client"). Call before
// issuing traffic; connections already established keep counting through
// the shared handle struct.
func (c *TCPClient) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.metrics.instrument(reg, "client")
}

// Call implements Caller.
func (c *TCPClient) Call(service, method string, body []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("call %s.%s on closed client: %w", service, method, ErrConnBroken)
	}
	p := c.pool[c.next.Add(1)%uint64(len(c.pool))]
	return p.roundTrip(service, method, body)
}

// Close closes all pooled connections; subsequent calls fail.
func (c *TCPClient) Close() error {
	c.closed.Store(true)
	var first error
	for _, p := range c.pool {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// Protocol v2 pool slot: multiplexed binary framing.
// ---------------------------------------------------------------------------

// muxResult is one demuxed response (or teardown notice) delivered to a
// waiting call.
type muxResult struct {
	body   []byte
	errMsg string
	isErr  bool
	broken bool
}

// muxStream is the live connection state of one muxConn generation: the
// socket, the frame write queue, and the in-flight call table. A new
// generation replaces it wholesale on redial, so calls racing a teardown
// hold a consistent snapshot.
type muxStream struct {
	conn    net.Conn
	writeCh chan []byte
	done    chan struct{}
	once    sync.Once
	pending map[uint64]chan muxResult // guarded by the owning muxConn's mu
	streams map[uint64]*ClientStream  // open event streams, same guard
}

// muxConn is one pool slot speaking protocol v2. conn state lives in cur;
// nil means disconnected and the next call dials (honouring the backoff
// window left by previous dial failures).
type muxConn struct {
	cli *TCPClient

	mu        sync.Mutex
	cur       *muxStream
	dialFails int
	nextDial  time.Time
}

// redialLocked (re)establishes the slot's connection and starts its
// reader and writer goroutines. Called with m.mu held.
func (m *muxConn) redialLocked() (*muxStream, error) {
	if wait := time.Until(m.nextDial); wait > 0 {
		time.Sleep(wait)
	}
	conn, err := net.DialTimeout("tcp", m.cli.addr, m.cli.dialTimeout)
	if err != nil {
		m.dialFails++
		backoff := redialBackoffBase << uint(min(m.dialFails-1, 10))
		if backoff > redialBackoffMax {
			backoff = redialBackoffMax
		}
		m.nextDial = time.Now().Add(backoff)
		return nil, fmt.Errorf("dial %s: %w", m.cli.addr, err)
	}
	cc := countingConn{Conn: conn, m: &m.cli.metrics}
	// The preamble is written synchronously under the dial budget so a
	// half-dead peer surfaces here, not on the first call.
	conn.SetDeadline(time.Now().Add(m.cli.dialTimeout)) //nolint:errcheck
	if _, err := cc.Write(framePreamble()); err != nil {
		conn.Close() //nolint:errcheck
		m.dialFails++
		m.nextDial = time.Now().Add(redialBackoffBase)
		return nil, fmt.Errorf("preamble %s: %w", m.cli.addr, err)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	m.dialFails = 0
	m.nextDial = time.Time{}
	st := &muxStream{
		conn:    conn,
		writeCh: make(chan []byte, writeQueueDepth),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan muxResult),
	}
	m.cur = st
	go m.readLoop(st, cc)
	go runFrameWriter(cc, st.writeCh, st.done, &m.cli.metrics, func() { m.fail(st) })
	return st, nil
}

// fail tears down one stream generation: the socket closes, the writer
// and reader stop, and every in-flight call on it gets ErrConnBroken. A
// later generation (or a concurrent fail of the same one) is untouched.
func (m *muxConn) fail(st *muxStream) {
	st.once.Do(func() {
		close(st.done)
		st.conn.Close() //nolint:errcheck
	})
	m.mu.Lock()
	if m.cur == st {
		m.cur = nil
	}
	pend := st.pending
	st.pending = nil
	strs := st.streams
	st.streams = nil
	m.mu.Unlock()
	for _, ch := range pend {
		ch <- muxResult{broken: true}
	}
	for _, cs := range strs {
		cs.finish(ErrConnBroken)
	}
}

// readLoop demuxes response frames to their waiting calls by request id.
// A response whose id has no waiter (abandoned by a per-call timeout, or
// a server bug) is dropped and counted — it can no longer poison the
// stream the way it did under lockstep gob.
func (m *muxConn) readLoop(st *muxStream, conn net.Conn) {
	br := bufio.NewReaderSize(conn, wireBufSize)
	for {
		kind, id, payload, err := readFrame(br)
		if err != nil {
			m.fail(st)
			return
		}
		if kind == frameKindEvent {
			// Stream push: deliver synchronously on this loop (the
			// ClientStream contract demands a fast, non-reentrant
			// callback). The payload is freshly allocated per frame, so
			// the callback owns it.
			m.mu.Lock()
			cs := st.streams[id]
			m.mu.Unlock()
			if cs == nil {
				m.cli.metrics.unmatched.Load().Inc()
				continue
			}
			cs.onEvent(payload)
			continue
		}
		if kind != frameKindRespons {
			m.fail(st)
			return
		}
		body, isErr, errMsg, err := parseResponse(payload)
		if err != nil {
			m.fail(st)
			return
		}
		m.mu.Lock()
		ch := st.pending[id]
		delete(st.pending, id)
		m.mu.Unlock()
		if ch == nil {
			m.cli.metrics.unmatched.Load().Inc()
			continue
		}
		ch <- muxResult{body: body, errMsg: errMsg, isErr: isErr}
	}
}

func (m *muxConn) roundTrip(service, method string, body []byte) ([]byte, error) {
	m.mu.Lock()
	st := m.cur
	if st == nil {
		var err error
		st, err = m.redialLocked()
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	id := m.cli.nextID.Add(1)
	ch := make(chan muxResult, 1)
	st.pending[id] = ch
	m.mu.Unlock()

	frame := appendRequestFrame(getFrameBuf(), id, service, method, body)
	select {
	case st.writeCh <- frame:
	case <-st.done:
		return nil, fmt.Errorf("send %s.%s: %w", service, method, ErrConnBroken)
	}

	var timeoutCh <-chan time.Time
	if t := m.cli.timeout; t > 0 {
		timer := time.NewTimer(t)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		if res.broken {
			return nil, fmt.Errorf("receive %s.%s: %w", service, method, ErrConnBroken)
		}
		if res.isErr {
			return nil, &RemoteError{Service: service, Method: method, Msg: res.errMsg}
		}
		return res.body, nil
	case <-timeoutCh:
		// Abandon only this call: deregister the id so the late response
		// is dropped by the demux. The connection — and every other call
		// in flight on it — is unaffected.
		m.mu.Lock()
		delete(st.pending, id)
		m.mu.Unlock()
		return nil, fmt.Errorf("%s.%s after %v: %w", service, method, m.cli.timeout, ErrCallTimeout)
	}
}

func (m *muxConn) close() error {
	m.mu.Lock()
	st := m.cur
	m.mu.Unlock()
	if st != nil {
		m.fail(st)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Protocol v1 pool slot: legacy lockstep gob.
// ---------------------------------------------------------------------------

// tcpConn is one legacy pool slot: a connection with its gob codec pair
// and the redial backoff state left by previous failures. conn == nil
// means the slot is disconnected and the next call dials.
//
// Any encode, decode, or deadline failure marks the connection broken — a
// late response would otherwise desync the shared gob stream and poison
// every later call — and the next call on the slot transparently redials.
type tcpConn struct {
	cli *TCPClient

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	dialFails int
	nextDial  time.Time
}

// redialLocked (re)establishes the slot's connection, honouring the
// backoff window left by previous dial failures. Called with p.mu held
// (or before the client is shared).
func (p *tcpConn) redialLocked() error {
	if wait := time.Until(p.nextDial); wait > 0 {
		time.Sleep(wait)
	}
	conn, err := net.DialTimeout("tcp", p.cli.addr, p.cli.dialTimeout)
	if err != nil {
		p.dialFails++
		backoff := redialBackoffBase << uint(min(p.dialFails-1, 10))
		if backoff > redialBackoffMax {
			backoff = redialBackoffMax
		}
		p.nextDial = time.Now().Add(backoff)
		return fmt.Errorf("dial %s: %w", p.cli.addr, err)
	}
	p.dialFails = 0
	p.nextDial = time.Time{}
	p.conn = conn
	cc := countingConn{Conn: conn, m: &p.cli.metrics}
	p.enc = gob.NewEncoder(cc)
	p.dec = gob.NewDecoder(cc)
	return nil
}

// breakLocked discards a connection whose stream state is no longer
// trustworthy. Called with p.mu held.
func (p *tcpConn) breakLocked() {
	if p.conn != nil {
		p.conn.Close() //nolint:errcheck
	}
	p.conn, p.enc, p.dec = nil, nil, nil
}

func (p *tcpConn) roundTrip(service, method string, body []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		if err := p.redialLocked(); err != nil {
			return nil, err
		}
	}
	req := wireRequest{ID: p.cli.nextID.Add(1), Service: service, Method: method, Body: body}
	if t := p.cli.timeout; t > 0 {
		if err := p.conn.SetDeadline(time.Now().Add(t)); err != nil {
			p.breakLocked()
			return nil, fmt.Errorf("set deadline for %s.%s: %w", service, method, ErrConnBroken)
		}
	}
	if err := p.enc.Encode(req); err != nil {
		p.breakLocked()
		return nil, fmt.Errorf("send %s.%s: %v: %w", service, method, err, ErrConnBroken)
	}
	var resp wireResponse
	if err := p.dec.Decode(&resp); err != nil {
		// The response may still arrive later (slow handler) or never;
		// either way undecoded frames would desync the stream, so the
		// connection can never be trusted again.
		p.breakLocked()
		return nil, fmt.Errorf("receive %s.%s: %v: %w", service, method, err, ErrConnBroken)
	}
	if resp.ID != req.ID {
		// A skewed frame (e.g. the answer to an abandoned request):
		// resynchronising is impossible without framing guarantees, so
		// drop the connection.
		p.breakLocked()
		return nil, fmt.Errorf("%s.%s: response id %d for request %d: %w",
			service, method, resp.ID, req.ID, ErrConnBroken)
	}
	if t := p.cli.timeout; t > 0 {
		// Clear the per-call deadline so the idle connection does not
		// expire it later and surface a spurious i/o timeout on reuse.
		if err := p.conn.SetDeadline(time.Time{}); err != nil {
			p.breakLocked()
		}
	}
	if resp.Err != "" {
		return nil, &RemoteError{Service: service, Method: method, Msg: resp.Err}
	}
	return resp.Body, nil
}

func (p *tcpConn) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.conn != nil {
		err = p.conn.Close()
		p.conn, p.enc, p.dec = nil, nil, nil
	}
	return err
}
