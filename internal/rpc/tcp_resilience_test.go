package rpc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTCPSlowResponseDoesNotPoisonStream: under the multiplexed binary
// protocol a call that outlives its budget fails with ErrCallTimeout and
// the connection survives — the late response is matched by id and
// dropped by the demux, so later calls on the same connection succeed
// without a redial and never read a stale frame.
func TestTCPSlowResponseDoesNotPoisonStream(t *testing.T) {
	srv, addr := startServer(t)
	var calls atomic.Int64
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // outlives the client deadline
		}
		return append([]byte("echo:"), body...), nil
	})
	cli, err := DialTCP(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck

	if _, err := cli.Call("svc", "m", []byte("first")); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("slow call err = %v, want ErrCallTimeout", err)
	}
	// The second call must not read the first call's late frame.
	out, err := cli.Call("svc", "m", []byte("second"))
	if err != nil {
		t.Fatalf("call after timeout failed (stream poisoned?): %v", err)
	}
	if string(out) != "echo:second" {
		t.Fatalf("out = %q, want the second call's own response", out)
	}
	// And the connection stays healthy for subsequent traffic.
	for i := 0; i < 5; i++ {
		if out, err := cli.Call("svc", "m", []byte{byte(i)}); err != nil || string(out) != "echo:"+string([]byte{byte(i)}) {
			t.Fatalf("call %d after recovery: (%q, %v)", i, out, err)
		}
	}
}

// TestTCPGobSlowResponseBreaksConn is the legacy-protocol regression test
// for the poisoned-stream bug: under lockstep gob a timed-out call leaves
// its late response frame in flight, so the client must mark the
// connection broken (ErrConnBroken) and the next call must redial rather
// than decode the stale frame.
func TestTCPGobSlowResponseBreaksConn(t *testing.T) {
	srv, addr := startServer(t)
	var calls atomic.Int64
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // outlives the client deadline
		}
		return append([]byte("echo:"), body...), nil
	})
	cli, err := DialTCPGob(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck

	if _, err := cli.Call("svc", "m", []byte("first")); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("slow call err = %v, want ErrConnBroken", err)
	}
	out, err := cli.Call("svc", "m", []byte("second"))
	if err != nil {
		t.Fatalf("call after timeout failed (stream poisoned?): %v", err)
	}
	if string(out) != "echo:second" {
		t.Fatalf("out = %q, want the second call's own response", out)
	}
}

// TestTCPResponseIDMismatchBreaksConn drives the legacy gob client
// against a misbehaving server that answers the first request with the
// wrong ID. Without framing guarantees the stream cannot be resynced, so
// the client must surface ErrConnBroken (not a silent skew) and recover
// by redialling. (The binary protocol instead drops unmatched ids — see
// TestTCPMuxUnmatchedResponseDropped.)
func TestTCPResponseIDMismatchBreaksConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close() //nolint:errcheck
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req wireRequest
					if err := dec.Decode(&req); err != nil {
						return
					}
					id := req.ID
					if first.Swap(false) {
						id += 1000 // skewed frame
					}
					if err := enc.Encode(wireResponse{ID: id, Body: req.Body}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	cli, err := DialTCPGob(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	if _, err := cli.Call("svc", "m", []byte("a")); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("skewed response err = %v, want ErrConnBroken", err)
	}
	out, err := cli.Call("svc", "m", []byte("b"))
	if err != nil || string(out) != "b" {
		t.Fatalf("call after redial = (%q, %v)", out, err)
	}
}

// TestTCPDeadlineClearedAfterRoundTrip: a successful call must clear the
// connection deadline, so an idle period longer than the call budget does
// not poison the next call on the same connection.
func TestTCPDeadlineClearedAfterRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) { return body, nil })
	cli, err := DialTCP(addr, 75*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	if _, err := cli.Call("svc", "m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // idle past the per-call budget
	if out, err := cli.Call("svc", "m", []byte("y")); err != nil || string(out) != "y" {
		t.Fatalf("call after idle = (%q, %v); stale deadline inherited?", out, err)
	}
}

// TestTCPReconnectAfterServerRestart: calls fail while the server is down
// and recover once a new server listens on the same address.
func TestTCPReconnectAfterServerRestart(t *testing.T) {
	srv := NewTCPServer()
	srv.Register("svc", func(method string, body []byte) ([]byte, error) { return body, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln) //nolint:errcheck // dies with the test server

	cli, err := DialTCP(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	if _, err := cli.Call("svc", "m", []byte("up")); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if _, err := cli.Call("svc", "m", []byte("down")); err == nil {
		t.Fatal("call against closed server succeeded")
	}

	// Restart on the same address (retry briefly: the OS may lag
	// releasing the port).
	var ln2 net.Listener
	for i := 0; i < 50; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := NewTCPServer()
	srv2.Register("svc", func(method string, body []byte) ([]byte, error) { return body, nil })
	go srv2.Serve(ln2) //nolint:errcheck // dies with the test server
	t.Cleanup(srv2.Close)

	// The client redials with backoff; allow a few attempts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := cli.Call("svc", "m", []byte("back"))
		if err == nil {
			if string(out) != "back" {
				t.Fatalf("out = %q", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
	}
}

// TestTCPServerConcurrentDispatch pipelines two requests on one raw
// connection; with concurrent dispatch the fast second request must be
// answered before the slow first one.
func TestTCPServerConcurrentDispatch(t *testing.T) {
	srv, addr := startServer(t)
	release := make(chan struct{})
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		if method == "slow" {
			<-release
		}
		return body, nil
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(wireRequest{ID: 1, Service: "svc", Method: "slow"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(wireRequest{ID: 2, Service: "svc", Method: "fast"}); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 {
		t.Fatalf("first response ID = %d, want 2 (slow handler blocked the connection)", resp.ID)
	}
	close(release)
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 {
		t.Fatalf("second response ID = %d, want 1", resp.ID)
	}
}

// TestTCPPoolConcurrentCalls exercises a pooled client under concurrent
// load: all calls succeed with their own responses.
func TestTCPPoolConcurrentCalls(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		time.Sleep(5 * time.Millisecond)
		return body, nil
	})
	cli, err := DialTCPPool(addr, 5*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				msg := []byte{byte(g), byte(i)}
				out, err := cli.Call("svc", "echo", msg)
				if err != nil || string(out) != string(msg) {
					t.Errorf("goroutine %d call %d = (%v, %v)", g, i, out, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTCPMuxUnmatchedResponseDropped: under the binary protocol a
// response whose id matches no waiting call (late answer to an abandoned
// request, or a buggy server) is dropped and counted, not fatal — the
// matched response that follows is still delivered on the same
// connection.
func TestTCPMuxUnmatchedResponseDropped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close() //nolint:errcheck
		br := bufio.NewReader(conn)
		var pre [4]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			return
		}
		for {
			_, id, payload, err := readFrame(br)
			if err != nil {
				return
			}
			_, _, body, err := parseRequest(payload)
			if err != nil {
				return
			}
			// A ghost frame for an id nobody is waiting on, then the
			// real answer.
			out := appendResponseFrame(nil, id+1000, "", []byte("ghost"))
			out = appendResponseFrame(out, id, "", body)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	cli, err := DialTCP(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	reg := obs.NewRegistry()
	cli.Instrument(reg)
	out, err := cli.Call("svc", "m", []byte("payload"))
	if err != nil || string(out) != "payload" {
		t.Fatalf("call = (%q, %v), want own payload", out, err)
	}
	if n := reg.Counter(`rpc_responses_unmatched_total{side="client"}`).Value(); n == 0 {
		t.Fatal("unmatched-response counter not incremented for the ghost frame")
	}
	// The connection survived the ghost: a second call works without a
	// redial window.
	if out, err := cli.Call("svc", "m", []byte("again")); err != nil || string(out) != "again" {
		t.Fatalf("call after ghost = (%q, %v)", out, err)
	}
}

// chaosProxy forwards TCP connections to a backend and can sever every
// live connection on demand, simulating mid-stream network breakage
// without touching either endpoint.
type chaosProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   []net.Conn
}

func newChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend}
	t.Cleanup(func() {
		ln.Close() //nolint:errcheck
		p.sever()
	})
	go func() {
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close() //nolint:errcheck
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, client, server)
			p.mu.Unlock()
			go func() { io.Copy(server, client); server.Close() }() //nolint:errcheck
			go func() { io.Copy(client, server); client.Close() }() //nolint:errcheck
		}
	}()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

// sever closes every connection currently flowing through the proxy.
func (p *chaosProxy) sever() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
}

// TestTCPPoolStressNoCrossDelivery hammers a small pool (far more callers
// than slots, so every slot multiplexes many in-flight calls) while the
// network is severed mid-stream, and asserts the core mux invariant: a
// successful call NEVER returns another request's response. Errors during
// the breakage window are expected; cross-delivery is not. Run under
// -race in CI.
func TestTCPPoolStressNoCrossDelivery(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		// Shuffle completion order so responses interleave across ids.
		time.Sleep(time.Duration(body[1]%5) * time.Millisecond)
		return body, nil
	})
	proxy := newChaosProxy(t, addr)

	cli, err := DialTCPPool(proxy.addr(), 2*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck

	const goroutines = 32
	const callsEach = 25
	var wg sync.WaitGroup
	var severed atomic.Bool
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				msg := []byte{byte(g), byte(i), byte(g ^ i)}
				out, err := cli.Call("svc", "echo", msg)
				if err != nil {
					continue // breakage window: failure is fine, skew is not
				}
				if string(out) != string(msg) {
					t.Errorf("goroutine %d call %d: got %v want %v (cross-delivered response)", g, i, out, msg)
					return
				}
				if g == 0 && i == callsEach/2 && !severed.Swap(true) {
					proxy.sever() // mid-stream breakage while calls are in flight
				}
			}
		}(g)
	}
	wg.Wait()

	// After the chaos the pool must heal: fresh calls succeed again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err := cli.Call("svc", "echo", []byte{9, 9, 9})
		if err == nil {
			if string(out) != string([]byte{9, 9, 9}) {
				t.Fatalf("post-recovery echo = %v", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %v", err)
		}
	}
}
