package rpc

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*TCPServer, string) {
	t.Helper()
	srv := NewTCPServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // dies with the test server
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func TestTCPCallRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		return append([]byte(method+"/"), body...), nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	out, err := cli.Call("svc", "validate", []byte("cert"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "validate/cert" {
		t.Errorf("out = %q", out)
	}
}

func TestTCPUnknownService(t *testing.T) {
	_, addr := startServer(t)
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, err = cli.Call("ghost", "m", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v", err, err)
	}
}

func TestTCPHandlerError(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(string, []byte) ([]byte, error) {
		return nil, errors.New("rejected")
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	_, err = cli.Call("svc", "m", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "rejected" {
		t.Errorf("err = %v", err)
	}
}

func TestTCPSequentialCallsOneConnection(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		return body, nil
	})
	cli, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	for i := 0; i < 20; i++ {
		msg := []byte{byte(i)}
		out, err := cli.Call("svc", "echo", msg)
		if err != nil || len(out) != 1 || out[0] != byte(i) {
			t.Fatalf("call %d = (%v, %v)", i, out, err)
		}
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		return body, nil
	})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := DialTCP(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close() //nolint:errcheck
			for i := 0; i < 25; i++ {
				msg := []byte{byte(c), byte(i)}
				out, err := cli.Call("svc", "echo", msg)
				if err != nil || string(out) != string(msg) {
					t.Errorf("client %d call %d: (%v, %v)", c, i, out, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestTCPLargePayload(t *testing.T) {
	srv, addr := startServer(t)
	srv.Register("svc", func(method string, body []byte) ([]byte, error) {
		// Reverse the payload so we know it made the full round trip.
		out := make([]byte, len(body))
		for i, b := range body {
			out[len(body)-1-i] = b
		}
		return out, nil
	})
	cli, err := DialTCP(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()    //nolint:errcheck
	const size = 4 << 20 // 4 MiB
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	out, err := cli.Call("svc", "rev", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != size {
		t.Fatalf("got %d bytes", len(out))
	}
	for i := 0; i < size; i += 4093 {
		if out[i] != payload[size-1-i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestTCPDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", time.Second); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, addr := startServer(t)
	cli, err := DialTCP(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	srv.Close()
	srv.Close()
	// Calls after server close fail.
	if _, err := cli.Call("svc", "m", nil); err == nil {
		t.Error("call after server close succeeded")
	}
}
