package seal

import (
	"fmt"
	"testing"
)

func BenchmarkSealOpen(b *testing.B) {
	alice, err := NewIdentity(nil)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewIdentity(nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			msg := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env, err := alice.Seal(msg, svc.PublicKey())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := svc.Open(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
