// Package seal implements the encrypted communication of Sect. 4.1 of the
// paper: "If any visibility of data and certificates 'on the wire' is
// unacceptable to an application, which must be assumed to be the case
// with cross-domain interworking, then encrypted communication must be
// used. ... Data sent to a service can be encrypted with the service's
// public key and the public key of the caller can be included for
// encrypting the reply."
//
// Each party holds a long-lived X25519 identity. A sealed envelope is
// AES-256-GCM ciphertext under a key derived from the ECDH shared secret
// of the sender's and recipient's identities; the sender's public key
// travels in the envelope exactly as the paper describes, so the recipient
// can both decrypt and encrypt the reply to the caller. The GCM tag
// authenticates the payload, and the envelope binds direction (sender and
// recipient public keys are mixed into the key derivation) so an envelope
// cannot be reflected back at its author.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Errors returned by sealing and opening.
var (
	// ErrOpenFailed is returned when an envelope cannot be opened:
	// tampered ciphertext, wrong recipient, or a malformed envelope.
	ErrOpenFailed = errors.New("seal: cannot open envelope")
	// ErrBadPeerKey is returned for malformed peer public keys.
	ErrBadPeerKey = errors.New("seal: bad peer public key")
)

// Identity is a party's long-lived X25519 key pair. Derived shared
// secrets are cached per peer, so the ECDH cost is paid once per
// association rather than per message.
type Identity struct {
	priv *ecdh.PrivateKey

	mu      sync.Mutex
	secrets map[string][]byte // peer public key -> ECDH shared secret
}

// NewIdentity generates an identity from r (crypto/rand.Reader when nil).
func NewIdentity(r io.Reader) (*Identity, error) {
	if r == nil {
		r = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("seal: generate identity: %w", err)
	}
	return &Identity{priv: priv, secrets: make(map[string][]byte)}, nil
}

// sharedSecret returns the (cached) ECDH secret with a peer.
func (id *Identity) sharedSecret(peerPub []byte) ([]byte, error) {
	key := string(peerPub)
	id.mu.Lock()
	secret, ok := id.secrets[key]
	id.mu.Unlock()
	if ok {
		return secret, nil
	}
	peer, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPeerKey, err)
	}
	secret, err = id.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("seal: ecdh: %w", err)
	}
	id.mu.Lock()
	id.secrets[key] = secret
	id.mu.Unlock()
	return secret, nil
}

// PublicKey returns the identity's public key bytes (32 bytes).
func (id *Identity) PublicKey() []byte { return id.priv.PublicKey().Bytes() }

// deriveKey computes the directional AES key for sender->recipient
// traffic: HMAC-SHA256 over the ECDH secret keyed with both public keys in
// direction order.
func deriveKey(secret, senderPub, recipientPub []byte) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte("oasis-seal-v1")) //nolint:errcheck
	h.Write(senderPub)               //nolint:errcheck
	h.Write(recipientPub)            //nolint:errcheck
	return h.Sum(nil)
}

// Envelope is a sealed message. SenderPub rides along (in clear, as the
// paper notes — the key is public) so the recipient can decrypt without a
// prior association and can seal the reply back to the caller.
type Envelope struct {
	SenderPub []byte `json:"senderPub"`
	Nonce     []byte `json:"nonce"`
	Box       []byte `json:"box"`
}

// Seal encrypts plaintext from id to the recipient public key.
func (id *Identity) Seal(plaintext, recipientPub []byte) (Envelope, error) {
	secret, err := id.sharedSecret(recipientPub)
	if err != nil {
		return Envelope{}, err
	}
	senderPub := id.PublicKey()
	aead, err := newAEAD(deriveKey(secret, senderPub, recipientPub))
	if err != nil {
		return Envelope{}, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return Envelope{}, fmt.Errorf("seal: nonce: %w", err)
	}
	return Envelope{
		SenderPub: senderPub,
		Nonce:     nonce,
		Box:       aead.Seal(nil, nonce, plaintext, senderPub),
	}, nil
}

// Open decrypts an envelope addressed to id, returning the plaintext and
// the sender's public key (for sealing the reply).
func (id *Identity) Open(env Envelope) (plaintext, senderPub []byte, err error) {
	secret, err := id.sharedSecret(env.SenderPub)
	if err != nil {
		return nil, nil, err
	}
	aead, err := newAEAD(deriveKey(secret, env.SenderPub, id.PublicKey()))
	if err != nil {
		return nil, nil, err
	}
	if len(env.Nonce) != aead.NonceSize() {
		return nil, nil, ErrOpenFailed
	}
	out, err := aead.Open(nil, env.Nonce, env.Box, env.SenderPub)
	if err != nil {
		return nil, nil, ErrOpenFailed
	}
	return out, env.SenderPub, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seal: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: gcm: %w", err)
	}
	return aead, nil
}
