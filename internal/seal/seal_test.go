package seal

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rpc"
)

func identity(t *testing.T) *Identity {
	t.Helper()
	id, err := NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSealOpenRoundTrip(t *testing.T) {
	alice := identity(t)
	svc := identity(t)
	env, err := alice.Seal([]byte("patient record"), svc.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	plain, senderPub, err := svc.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "patient record" {
		t.Errorf("plain = %q", plain)
	}
	if !bytes.Equal(senderPub, alice.PublicKey()) {
		t.Error("sender public key not recovered")
	}
	// The service replies sealed to the recovered key.
	reply, err := svc.Seal([]byte("ok"), senderPub)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := alice.Open(reply)
	if err != nil || string(got) != "ok" {
		t.Errorf("reply = (%q, %v)", got, err)
	}
}

func TestOpenWrongRecipient(t *testing.T) {
	alice := identity(t)
	svc := identity(t)
	eve := identity(t)
	env, err := alice.Seal([]byte("secret"), svc.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eve.Open(env); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("eavesdropper opened envelope: %v", err)
	}
}

func TestOpenTamperedCiphertext(t *testing.T) {
	alice := identity(t)
	svc := identity(t)
	env, err := alice.Seal([]byte("secret"), svc.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	env.Box[0] ^= 0xff
	if _, _, err := svc.Open(env); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("tampered envelope opened: %v", err)
	}
}

func TestOpenReflectedEnvelopeFails(t *testing.T) {
	// An envelope alice->svc must not be openable as if it were
	// svc->alice traffic (directional key derivation).
	alice := identity(t)
	svc := identity(t)
	env, err := alice.Seal([]byte("secret"), svc.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	reflected := env
	reflected.SenderPub = svc.PublicKey()
	if _, _, err := alice.Open(reflected); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("reflected envelope opened: %v", err)
	}
}

func TestSealBadPeerKey(t *testing.T) {
	alice := identity(t)
	if _, err := alice.Seal([]byte("x"), []byte("short")); !errors.Is(err, ErrBadPeerKey) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := alice.Open(Envelope{SenderPub: []byte("short")}); !errors.Is(err, ErrBadPeerKey) {
		t.Errorf("err = %v", err)
	}
}

func TestOpenBadNonce(t *testing.T) {
	alice := identity(t)
	svc := identity(t)
	env, err := alice.Seal([]byte("x"), svc.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	env.Nonce = env.Nonce[:4]
	if _, _, err := svc.Open(env); !errors.Is(err, ErrOpenFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestQuickSealOpen(t *testing.T) {
	alice := identity(t)
	svc := identity(t)
	f := func(msg []byte) bool {
		env, err := alice.Seal(msg, svc.PublicKey())
		if err != nil {
			return false
		}
		got, _, err := svc.Open(env)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSealedTransportEndToEnd(t *testing.T) {
	// A plaintext-observing transport between a sealed caller and a
	// sealed handler: payloads never appear in clear on the wire.
	svcID := identity(t)
	cliID := identity(t)
	dir := NewDirectory()
	dir.Add("records", svcID.PublicKey())

	bus := rpc.NewLoopback()
	var observed [][]byte
	inner := func(method string, body []byte) ([]byte, error) {
		return []byte("RESULT:" + method), nil
	}
	sealed := Handler(svcID, inner)
	bus.Register("records", func(method string, body []byte) ([]byte, error) {
		observed = append(observed, append([]byte(nil), body...))
		out, err := sealed(method, body)
		if out != nil {
			observed = append(observed, append([]byte(nil), out...))
		}
		return out, err
	})

	caller := NewCaller(cliID, bus, dir)
	out, err := caller.Call("records", "fetch", []byte("patient joe_bloggs"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "RESULT:fetch" {
		t.Errorf("out = %q", out)
	}
	// Nothing observed on the wire contains the plaintexts.
	for _, wire := range observed {
		if bytes.Contains(wire, []byte("joe_bloggs")) {
			t.Error("request plaintext visible on the wire")
		}
		if bytes.Contains(wire, []byte("RESULT:fetch")) {
			t.Error("response plaintext visible on the wire")
		}
	}
	if len(observed) != 2 {
		t.Fatalf("observed %d wire messages", len(observed))
	}
}

func TestSealedCallerUnknownService(t *testing.T) {
	cliID := identity(t)
	caller := NewCaller(cliID, rpc.NewLoopback(), NewDirectory())
	if _, err := caller.Call("ghost", "m", nil); err == nil ||
		!strings.Contains(err.Error(), "no public key") {
		t.Errorf("err = %v", err)
	}
}

func TestSealedHandlerRejectsPlaintext(t *testing.T) {
	svcID := identity(t)
	h := Handler(svcID, func(method string, body []byte) ([]byte, error) {
		t.Error("inner handler reached with unsealed request")
		return nil, nil
	})
	if _, err := h("m", []byte("not an envelope")); err == nil {
		t.Error("plaintext request accepted")
	}
}

func TestSealedTransportApplicationError(t *testing.T) {
	svcID := identity(t)
	cliID := identity(t)
	dir := NewDirectory()
	dir.Add("svc", svcID.PublicKey())
	bus := rpc.NewLoopback()
	bus.Register("svc", Handler(svcID, func(method string, body []byte) ([]byte, error) {
		return nil, errors.New("denied")
	}))
	caller := NewCaller(cliID, bus, dir)
	if _, err := caller.Call("svc", "m", []byte("x")); err == nil {
		t.Error("application error swallowed")
	}
}
