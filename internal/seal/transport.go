package seal

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/rpc"
)

// Directory maps service names to their sealing public keys (the paper's
// assumption that callers know "the service's public key").
type Directory struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewDirectory creates an empty key directory.
func NewDirectory() *Directory {
	return &Directory{keys: make(map[string][]byte)}
}

// Add registers a service's sealing public key.
func (d *Directory) Add(service string, pub []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]byte, len(pub))
	copy(cp, pub)
	d.keys[service] = cp
}

// Lookup fetches a service's key.
func (d *Directory) Lookup(service string) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[service]
	return k, ok
}

// Caller wraps an rpc.Caller so that request bodies travel sealed to the
// target service and responses come back sealed to this caller — nothing
// is visible "on the wire" even over an untrusted transport.
type Caller struct {
	id    *Identity
	inner rpc.Caller
	dir   *Directory
}

var _ rpc.Caller = (*Caller)(nil)

// NewCaller builds a sealing caller.
func NewCaller(id *Identity, inner rpc.Caller, dir *Directory) *Caller {
	return &Caller{id: id, inner: inner, dir: dir}
}

// Call implements rpc.Caller.
func (c *Caller) Call(service, method string, body []byte) ([]byte, error) {
	pub, ok := c.dir.Lookup(service)
	if !ok {
		return nil, fmt.Errorf("seal: no public key for service %s", service)
	}
	env, err := c.id.Seal(body, pub)
	if err != nil {
		return nil, err
	}
	wire, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("seal: encode: %w", err)
	}
	out, err := c.inner.Call(service, method, wire)
	if err != nil {
		return nil, err
	}
	var respEnv Envelope
	if err := json.Unmarshal(out, &respEnv); err != nil {
		return nil, fmt.Errorf("seal: decode response: %w", err)
	}
	plain, _, err := c.id.Open(respEnv)
	if err != nil {
		return nil, err
	}
	return plain, nil
}

// Handler wraps an rpc.Handler so that it accepts sealed requests and
// seals its responses back to the caller's public key (which arrived in
// the request envelope, as the paper prescribes).
func Handler(id *Identity, inner rpc.Handler) rpc.Handler {
	return func(method string, body []byte) ([]byte, error) {
		var env Envelope
		if err := json.Unmarshal(body, &env); err != nil {
			return nil, fmt.Errorf("seal: decode request: %w", err)
		}
		plain, senderPub, err := id.Open(env)
		if err != nil {
			return nil, err
		}
		out, err := inner(method, plain)
		if err != nil {
			// Application errors travel as transport errors (in
			// clear); only payloads are confidential.
			return nil, err
		}
		respEnv, err := id.Seal(out, senderPub)
		if err != nil {
			return nil, err
		}
		return json.Marshal(respEnv)
	}
}
