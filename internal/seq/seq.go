// Package seq provides the per-shard sequencer at the heart of the
// unified async core: every mutation for a shard flows through one
// ordered apply loop, so journal order, broker publish order and
// replication ship order are the same stream by construction.
//
// The apply loop is a *role*, not a dedicated goroutine. Each shard
// has a bounded mailbox (a channel) and a combiner mutex. A submitter
// enqueues its item and then tries to take the combiner lock:
//
//   - If it wins, it becomes the shard's apply loop: it drains the
//     mailbox into a batch, calls Apply once for the whole batch, and
//     repeats until the mailbox is empty. After releasing the lock it
//     rechecks the mailbox and re-runs if anything arrived in the gap.
//   - If it loses, some other goroutine currently holds the role. That
//     holder's post-unlock recheck (or a later submitter's TryLock)
//     is obligated to drain the item, so the loser just returns and
//     waits on its per-item completion signal.
//
// This flat-combining shape keeps the uncontended path inline (no
// goroutine handoff — roughly a channel send plus a TryLock), batches
// automatically under contention (the longer Apply takes, the more
// items the next drain picks up), and leaks nothing when Close is
// never called — important for the many tests and benchmarks that
// construct services without tearing them down.
//
// Backpressure: the mailbox is a bounded channel and Submit blocks on
// a full shard, so a slow journal or broker pushes back through the
// sequencer to the RPC layer instead of growing a queue or dropping
// work downstream.
//
// Constraint: Apply (and anything it invokes synchronously, such as
// broker taps) must not call Submit on the same sequencer — the
// combiner holds the shard role while applying, and a blocking send
// into its own full mailbox would deadlock.
package seq

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("seq: sequencer closed")

const defaultDepth = 256

// Config configures a Sequencer.
type Config[T any] struct {
	// Shards is the number of independent ordered streams. Mutations
	// submitted to different shards may be applied concurrently;
	// mutations on one shard are applied in submission order.
	Shards int
	// Depth bounds each shard's mailbox. 0 means the default (256).
	// Submit blocks when the shard's mailbox is full — this is the
	// end-to-end backpressure contract.
	Depth int
	// Apply is called with a batch of items for one shard, in
	// submission order, with the shard's apply role held: no two
	// Apply calls for the same shard ever run concurrently.
	Apply func(shard int, batch []T)
	// Name labels the metrics (typically the service name).
	Name string
	// Obs optionally receives seq_mailbox_depth, seq_apply_ns and
	// seq_batch_size histograms.
	Obs *obs.Registry
}

type shardState[T any] struct {
	mu   sync.Mutex // the combiner token: held by the shard's current apply loop
	mbox chan T
	buf  []T // drain scratch; only touched with mu held
}

// Sequencer fans mutations into per-shard ordered apply loops.
type Sequencer[T any] struct {
	shards []shardState[T]
	apply  func(shard int, batch []T)

	// gate serialises Submit against Close: every Submit holds the
	// read side for its entire duration (enqueue + combine), so once
	// Close holds the write side every mailbox is provably empty —
	// each prior submitter either drained its own item or observed a
	// combiner that was obligated to.
	gate   sync.RWMutex
	closed bool

	depthH *obs.Histogram // mailbox depth observed at enqueue
	applyH *obs.Histogram // ns per Apply call
	sizeH  *obs.Histogram // items per Apply call
}

var (
	depthBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	applyBuckets = []int64{
		1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000,
		500000, 1000000, 2500000, 5000000, 10000000, 50000000,
	}
	sizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// New builds a sequencer. Apply must be non-nil; Shards must be >= 1.
func New[T any](cfg Config[T]) *Sequencer[T] {
	if cfg.Apply == nil {
		panic("seq: Config.Apply is nil")
	}
	if cfg.Shards < 1 {
		panic("seq: Config.Shards < 1")
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = defaultDepth
	}
	s := &Sequencer[T]{
		shards: make([]shardState[T], cfg.Shards),
		apply:  cfg.Apply,
	}
	for i := range s.shards {
		s.shards[i].mbox = make(chan T, depth)
	}
	if cfg.Obs != nil {
		label := ""
		if cfg.Name != "" {
			label = fmt.Sprintf("{service=%q}", cfg.Name)
		}
		s.depthH = cfg.Obs.Histogram("seq_mailbox_depth"+label, depthBuckets)
		s.applyH = cfg.Obs.Histogram("seq_apply_ns"+label, applyBuckets)
		s.sizeH = cfg.Obs.Histogram("seq_batch_size"+label, sizeBuckets)
	}
	return s
}

// Shards returns the number of independent streams.
func (s *Sequencer[T]) Shards() int { return len(s.shards) }

// Submit enqueues item on shard's ordered stream and guarantees it
// will be applied (by this goroutine or the shard's current combiner)
// before the item's completion is signalled by Apply. It blocks while
// the shard's mailbox is full. Returns ErrClosed after Close.
func (s *Sequencer[T]) Submit(shard int, item T) error {
	sh := &s.shards[shard%len(s.shards)]

	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.closed {
		return ErrClosed
	}

	s.depthH.Observe(int64(len(sh.mbox)))
	sh.mbox <- item // bounded: blocks when full (backpressure)

	// Combine: win the shard's apply role or establish that someone
	// else holds it and is obligated to drain our item.
	for sh.mu.TryLock() {
		s.drainLocked(shard%len(s.shards), sh)
		sh.mu.Unlock()
		// Recheck after unlock: an item enqueued between our last
		// drain and the unlock may belong to a submitter whose
		// TryLock failed against *us*. If the mailbox is non-empty
		// we must re-acquire (or observe a new holder).
		if len(sh.mbox) == 0 {
			return nil
		}
	}
	return nil
}

// drainLocked runs the shard's apply loop until the mailbox is empty.
// Caller holds sh.mu.
func (s *Sequencer[T]) drainLocked(shard int, sh *shardState[T]) {
	for {
		batch := sh.buf[:0]
		for {
			select {
			case item := <-sh.mbox:
				batch = append(batch, item)
			default:
				goto gathered
			}
		}
	gathered:
		if len(batch) == 0 {
			return
		}
		start := time.Now()
		s.apply(shard, batch)
		s.applyH.ObserveSince(start)
		s.sizeH.Observe(int64(len(batch)))
		// Recycle the scratch slice; drop item references so pooled
		// ops don't linger past their completion signal.
		var zero T
		for i := range batch {
			batch[i] = zero
		}
		sh.buf = batch[:0]
	}
}

// Close marks the sequencer closed. It blocks until every in-flight
// Submit has finished, at which point all mailboxes are empty (each
// submitter either applied its own item or handed it to a combiner
// that drained it before returning). Subsequent Submits return
// ErrClosed. Close is idempotent.
func (s *Sequencer[T]) Close() {
	s.gate.Lock()
	s.closed = true
	s.gate.Unlock()
}
