package seq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// Every item submitted to one shard must be applied exactly once, in
// submission order per submitter, with no two Apply calls for the
// shard running concurrently.
func TestOrderedApplyPerShard(t *testing.T) {
	const (
		workers = 8
		perW    = 500
	)
	type item struct{ worker, n int }

	var mu sync.Mutex
	got := make(map[int][]int) // worker -> sequence of n, in apply order
	var inApply atomic.Int32

	s := New(Config[item]{
		Shards: 1,
		Apply: func(shard int, batch []item) {
			if inApply.Add(1) != 1 {
				t.Error("concurrent Apply on one shard")
			}
			mu.Lock()
			for _, it := range batch {
				got[it.worker] = append(got[it.worker], it.n)
			}
			mu.Unlock()
			inApply.Add(-1)
		},
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < perW; n++ {
				if err := s.Submit(0, item{w, n}); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	for w := 0; w < workers; w++ {
		seq := got[w]
		if len(seq) != perW {
			t.Fatalf("worker %d: applied %d items, want %d", w, len(seq), perW)
		}
		for n, v := range seq {
			if v != n {
				t.Fatalf("worker %d: out of order at %d: got %d", w, n, v)
			}
		}
	}
}

// Under contention batches should form: total Apply calls must be
// well under the item count.
func TestBatchingUnderContention(t *testing.T) {
	const items = 4000
	var calls, applied atomic.Int64
	s := New(Config[int]{
		Shards: 1,
		Apply: func(_ int, batch []int) {
			calls.Add(1)
			applied.Add(int64(len(batch)))
			time.Sleep(50 * time.Microsecond) // make the combiner slow
		},
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < items/8; n++ {
				_ = s.Submit(0, n)
			}
		}()
	}
	wg.Wait()
	s.Close()
	if applied.Load() != items {
		t.Fatalf("applied %d, want %d", applied.Load(), items)
	}
	if c := calls.Load(); c >= items {
		t.Fatalf("no batching: %d Apply calls for %d items", c, items)
	}
}

// A full mailbox must block Submit (backpressure), not drop or error.
func TestBackpressureBlocks(t *testing.T) {
	release := make(chan struct{})
	var applied atomic.Int64
	s := New(Config[int]{
		Shards: 1,
		Depth:  1,
		Apply: func(_ int, batch []int) {
			<-release
			applied.Add(int64(len(batch)))
		},
	})

	// First submit becomes the combiner and parks in Apply.
	go func() { _ = s.Submit(0, 1) }()
	for {
		if applied.Load() == 0 && len(s.shards[0].mbox) == 0 {
			// combiner has drained item 1 and is inside Apply
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Second fills the depth-1 mailbox and parks; third must block
	// in the channel send.
	done2 := make(chan struct{})
	done3 := make(chan struct{})
	go func() { _ = s.Submit(0, 2); close(done2) }()
	time.Sleep(10 * time.Millisecond)
	go func() { _ = s.Submit(0, 3); close(done3) }()

	select {
	case <-done3:
		t.Fatal("third Submit returned while mailbox full and combiner parked")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	<-done2
	<-done3
	s.Close()
	if applied.Load() != 3 {
		t.Fatalf("applied %d, want 3", applied.Load())
	}
}

// After Close returns, Submit errors and nothing is stranded in a
// mailbox.
func TestCloseSemantics(t *testing.T) {
	var applied atomic.Int64
	s := New(Config[int]{
		Shards: 4,
		Apply: func(_ int, batch []int) {
			applied.Add(int64(len(batch)))
		},
	})

	var wg sync.WaitGroup
	const n = 2000
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = s.Submit(i, i)
		}(i)
	}
	wg.Wait()
	s.Close()

	if applied.Load() != n {
		t.Fatalf("applied %d, want %d (items stranded at Close)", applied.Load(), n)
	}
	for i := range s.shards {
		if l := len(s.shards[i].mbox); l != 0 {
			t.Fatalf("shard %d mailbox non-empty after Close: %d", i, l)
		}
	}
	if err := s.Submit(0, 99); err != ErrClosed {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// Different shards may apply concurrently; same shard never does.
func TestShardIndependence(t *testing.T) {
	const shards = 4
	var perShard [shards]atomic.Int32
	var maxConc atomic.Int32
	var conc atomic.Int32
	s := New(Config[int]{
		Shards: shards,
		Apply: func(shard int, batch []int) {
			if perShard[shard].Add(1) != 1 {
				t.Errorf("shard %d: concurrent Apply", shard)
			}
			c := conc.Add(1)
			for {
				m := maxConc.Load()
				if c <= m || maxConc.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			conc.Add(-1)
			perShard[shard].Add(-1)
		},
	})
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				_ = s.Submit(sh, n)
			}
		}(sh)
	}
	wg.Wait()
	s.Close()
	if maxConc.Load() < 2 {
		t.Logf("note: shards never overlapped (maxConc=%d); scheduling-dependent, not a failure", maxConc.Load())
	}
}

// Metrics are registered and populated when an obs registry is given.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config[int]{
		Shards: 2,
		Name:   "login",
		Obs:    reg,
		Apply:  func(int, []int) {},
	})
	for i := 0; i < 10; i++ {
		_ = s.Submit(i, i)
	}
	s.Close()
	for _, name := range []string{
		`seq_mailbox_depth{service="login"}`,
		`seq_apply_ns{service="login"}`,
		`seq_batch_size{service="login"}`,
	} {
		h := reg.Histogram(name, nil)
		if h.Count() == 0 {
			t.Fatalf("histogram %s has no observations", name)
		}
	}
}
