package sign

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Errors returned by the session-key and challenge-response machinery.
var (
	// ErrChallengeExpired is returned when a response arrives after the
	// challenge's deadline.
	ErrChallengeExpired = errors.New("challenge expired")
	// ErrChallengeUnknown is returned when no outstanding challenge
	// matches the supplied nonce.
	ErrChallengeUnknown = errors.New("unknown challenge nonce")
	// ErrBadResponse is returned when the response signature does not
	// verify under the claimed public key.
	ErrBadResponse = errors.New("challenge response invalid")
)

// SessionKey is an Ed25519 key pair created by a principal at the start of
// an OASIS session (Sect. 4.1, "Integration with PKC"). The public half is
// bound into the signature of every RMC issued during the session; the
// service may at any time demand proof of possession of the private half.
type SessionKey struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewSessionKey generates a session key pair from r (crypto/rand.Reader
// when nil).
func NewSessionKey(r io.Reader) (*SessionKey, error) {
	if r == nil {
		r = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("generate session key: %w", err)
	}
	return &SessionKey{Public: pub, private: priv}, nil
}

// PrincipalID returns the canonical principal identifier derived from the
// session public key: the hex encoding of the key bytes. This is the
// "session-specific principal id" of Sect. 4.1 — it is an argument to every
// RMC signature but never appears in the certificate itself.
func (k *SessionKey) PrincipalID() string {
	return hex.EncodeToString(k.Public)
}

// Respond answers a challenge by signing its nonce and payload with the
// session private key.
func (k *SessionKey) Respond(c Challenge) Response {
	msg := challengeMessage(c)
	return Response{Nonce: c.Nonce, Sig: ed25519.Sign(k.private, msg)}
}

// Challenge is a fresh random challenge issued by a service. Following
// ISO/9798, the service keeps the expected value and a deadline; the
// client proves possession of the private key by signing nonce||payload.
type Challenge struct {
	Nonce    [16]byte
	Payload  [16]byte
	Deadline time.Time
}

// Response carries the client's proof for a given challenge nonce.
type Response struct {
	Nonce [16]byte
	Sig   []byte
}

func challengeMessage(c Challenge) []byte {
	msg := make([]byte, 0, len(c.Nonce)+len(c.Payload))
	msg = append(msg, c.Nonce[:]...)
	msg = append(msg, c.Payload[:]...)
	return msg
}

// Challenger issues and checks challenges on the service side. It is safe
// for concurrent use.
type Challenger struct {
	mu      sync.Mutex
	pending map[[16]byte]pendingChallenge
	ttl     time.Duration
	now     func() time.Time
	entropy io.Reader
}

type pendingChallenge struct {
	challenge Challenge
	publicKey ed25519.PublicKey
}

// NewChallenger creates a Challenger whose challenges expire after ttl.
// now defaults to time.Now and entropy to crypto/rand.Reader.
func NewChallenger(ttl time.Duration, now func() time.Time, entropy io.Reader) *Challenger {
	if now == nil {
		now = time.Now
	}
	if entropy == nil {
		entropy = rand.Reader
	}
	return &Challenger{
		pending: make(map[[16]byte]pendingChallenge),
		ttl:     ttl,
		now:     now,
		entropy: entropy,
	}
}

// Issue creates a challenge bound to the public key the client presented.
// The service sends the challenge to the client and retains the pending
// state until Check or expiry.
func (c *Challenger) Issue(pub ed25519.PublicKey) (Challenge, error) {
	var ch Challenge
	if _, err := io.ReadFull(c.entropy, ch.Nonce[:]); err != nil {
		return Challenge{}, fmt.Errorf("issue challenge: %w", err)
	}
	if _, err := io.ReadFull(c.entropy, ch.Payload[:]); err != nil {
		return Challenge{}, fmt.Errorf("issue challenge: %w", err)
	}
	ch.Deadline = c.now().Add(c.ttl)
	c.mu.Lock()
	c.pending[ch.Nonce] = pendingChallenge{challenge: ch, publicKey: pub}
	c.mu.Unlock()
	return ch, nil
}

// Check verifies a response. On success the pending challenge is consumed,
// and the service may safely bind the public key into certificate
// signatures (the caller "has access to the private key corresponding to
// the public key presented", Sect. 4.1).
func (c *Challenger) Check(r Response) error {
	c.mu.Lock()
	p, ok := c.pending[r.Nonce]
	if ok {
		delete(c.pending, r.Nonce)
	}
	c.mu.Unlock()
	if !ok {
		return ErrChallengeUnknown
	}
	if c.now().After(p.challenge.Deadline) {
		return ErrChallengeExpired
	}
	if !ed25519.Verify(p.publicKey, challengeMessage(p.challenge), r.Sig) {
		return ErrBadResponse
	}
	return nil
}

// PendingCount reports the number of outstanding challenges (diagnostics).
func (c *Challenger) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Expire discards challenges whose deadline has passed; returns the number
// removed. Services call this periodically or piggyback it on Issue.
func (c *Challenger) Expire() int {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, p := range c.pending {
		if now.After(p.challenge.Deadline) {
			delete(c.pending, k)
			n++
		}
	}
	return n
}
