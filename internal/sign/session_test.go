package sign

import (
	"errors"
	"testing"
	"time"
)

func fixedNow() func() time.Time {
	t0 := time.Date(2001, 11, 12, 9, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestSessionKeyPrincipalID(t *testing.T) {
	k1, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1.PrincipalID() == k2.PrincipalID() {
		t.Error("distinct session keys share a principal id")
	}
	if len(k1.PrincipalID()) != 64 {
		t.Errorf("principal id length = %d, want 64 hex chars", len(k1.PrincipalID()))
	}
}

func TestChallengeResponseSuccess(t *testing.T) {
	key, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChallenger(time.Minute, fixedNow(), nil)
	ch, err := c.Issue(key.Public)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(key.Respond(ch)); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}
}

func TestChallengeResponseWrongKey(t *testing.T) {
	rightKey, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChallenger(time.Minute, fixedNow(), nil)
	ch, err := c.Issue(rightKey.Public)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(wrongKey.Respond(ch)); !errors.Is(err, ErrBadResponse) {
		t.Errorf("response from wrong key accepted: %v", err)
	}
}

func TestChallengeSingleUse(t *testing.T) {
	key, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChallenger(time.Minute, fixedNow(), nil)
	ch, err := c.Issue(key.Public)
	if err != nil {
		t.Fatal(err)
	}
	resp := key.Respond(ch)
	if err := c.Check(resp); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(resp); !errors.Is(err, ErrChallengeUnknown) {
		t.Errorf("replayed response accepted: %v", err)
	}
}

func TestChallengeUnknownNonce(t *testing.T) {
	c := NewChallenger(time.Minute, fixedNow(), nil)
	var r Response
	if err := c.Check(r); !errors.Is(err, ErrChallengeUnknown) {
		t.Errorf("unknown nonce: %v", err)
	}
}

func TestChallengeExpiry(t *testing.T) {
	key, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c := NewChallenger(time.Second, func() time.Time { return now }, nil)
	ch, err := c.Issue(key.Public)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if err := c.Check(key.Respond(ch)); !errors.Is(err, ErrChallengeExpired) {
		t.Errorf("expired challenge: %v", err)
	}
}

func TestChallengerExpire(t *testing.T) {
	key, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c := NewChallenger(time.Second, func() time.Time { return now }, nil)
	if _, err := c.Issue(key.Public); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Issue(key.Public); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
	now = now.Add(5 * time.Second)
	if n := c.Expire(); n != 2 {
		t.Errorf("Expire removed %d, want 2", n)
	}
	if got := c.PendingCount(); got != 0 {
		t.Errorf("PendingCount after Expire = %d", got)
	}
}

func TestChallengeTamperedPayload(t *testing.T) {
	key, err := NewSessionKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChallenger(time.Minute, fixedNow(), nil)
	ch, err := c.Issue(key.Public)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary alters the payload before the client signs: the service's
	// retained copy no longer matches, so verification fails.
	tampered := ch
	tampered.Payload[0] ^= 0xff
	if err := c.Check(key.Respond(tampered)); !errors.Is(err, ErrBadResponse) {
		t.Errorf("tampered payload accepted: %v", err)
	}
}
