// Package sign implements the certificate cryptography described in Sect. 4
// of the paper: role membership and appointment certificates are protected
// by a signature F(principal_id, protected fields, SECRET), where SECRET is
// held by the issuing service. Knowledge of the secret is required to forge
// a signature (protection from forgery); the signature covers all protected
// fields (protection from tampering); and the principal identifier is an
// argument to the signature function without appearing in the certificate
// (protection from theft).
//
// The package also provides Ed25519 session key pairs and the ISO/9798-style
// challenge-response protocol of Sect. 4.1 used to prove possession of the
// private key matching a public key bound into an RMC.
package sign

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
)

// Errors returned by signing and verification.
var (
	// ErrBadSignature is returned when a signature fails verification:
	// the certificate was tampered with, forged, or presented by a
	// principal other than the one it was issued to.
	ErrBadSignature = errors.New("signature verification failed")
	// ErrUnknownKey is returned when the key id on a certificate does
	// not correspond to any secret held by the verifier (e.g. the secret
	// was rotated out and the certificate was not re-issued).
	ErrUnknownKey = errors.New("unknown signing key id")
)

// SignatureSize is the length in bytes of certificate signatures.
const SignatureSize = sha256.Size

// Signature is an HMAC-SHA256 tag over a certificate's protected fields
// and the holder's principal identifier.
type Signature [SignatureSize]byte

// Secret is a service-held signing secret identified by KeyID. Certificates
// record the KeyID so the verifier can select the right secret after
// rotation.
type Secret struct {
	KeyID uint32
	Key   [32]byte
}

// NewSecret generates a fresh random secret with the given key id, reading
// entropy from r (use crypto/rand.Reader in production; a deterministic
// reader in tests).
func NewSecret(keyID uint32, r io.Reader) (Secret, error) {
	var s Secret
	s.KeyID = keyID
	if _, err := io.ReadFull(r, s.Key[:]); err != nil {
		return Secret{}, fmt.Errorf("generate secret: %w", err)
	}
	return s, nil
}

// MustNewSecret generates a secret from crypto/rand, panicking on entropy
// failure (startup-time only).
func MustNewSecret(keyID uint32) Secret {
	s, err := NewSecret(keyID, rand.Reader)
	if err != nil {
		panic(err)
	}
	return s
}

// macState is a pooled keyed HMAC: certificate verification runs on the
// callback-validation hot path, and building a fresh HMAC (two SHA-256
// states) per signature is the dominant allocation there. Reset restores
// the keyed initial state, so an instance is reusable as long as the key
// matches; on a key mismatch (rotation, multiple rings) it is re-keyed.
// The scratch fields keep the length frames and the principal-id bytes
// off the per-call heap: both would otherwise escape through the
// hash.Hash interface on every signature.
type macState struct {
	key  [32]byte
	h    hash.Hash
	lenb [8]byte
	pid  []byte
	sum  []byte
}

var macPool sync.Pool

// mac computes HMAC-SHA256(key, principalID || 0x00 || fields...) with
// length framing so that distinct field splits never collide.
func mac(key []byte, principalID string, fields [][]byte) Signature {
	st, _ := macPool.Get().(*macState)
	switch {
	case st == nil:
		st = &macState{}
		copy(st.key[:], key)
		st.h = hmac.New(sha256.New, key)
	case !bytes.Equal(st.key[:], key):
		copy(st.key[:], key)
		st.h = hmac.New(sha256.New, key)
	default:
		st.h.Reset()
	}
	st.pid = append(st.pid[:0], principalID...)
	st.writeFramed(st.pid)
	for _, f := range fields {
		st.writeFramed(f)
	}
	// Sum through the pooled scratch: passing sig[:0] straight into the
	// hash.Hash interface would make sig escape and cost a heap
	// allocation per signature.
	st.sum = st.h.Sum(st.sum[:0])
	var sig Signature
	copy(sig[:], st.sum)
	macPool.Put(st)
	return sig
}

func (st *macState) writeFramed(b []byte) {
	binary.BigEndian.PutUint64(st.lenb[:], uint64(len(b)))
	st.h.Write(st.lenb[:]) //nolint:errcheck // hash writers never fail
	st.h.Write(b)          //nolint:errcheck
}

// Sign computes the certificate signature for the protected fields, bound
// to principalID. The principal id is an input to the MAC but is not part
// of the certificate, exactly as in Fig. 4 of the paper.
func (s Secret) Sign(principalID string, fields ...[]byte) Signature {
	return mac(s.Key[:], principalID, fields)
}

// Verify checks sig against the protected fields and principal id.
func (s Secret) Verify(sig Signature, principalID string, fields ...[]byte) error {
	want := mac(s.Key[:], principalID, fields)
	if !hmac.Equal(want[:], sig[:]) {
		return ErrBadSignature
	}
	return nil
}

// KeyRing holds a service's current and historical secrets, supporting the
// rotation/re-issue cycle described for appointment certificates in
// Sect. 4.1 ("re-issued, encrypted with a new server secret, from time to
// time"). Verification accepts any retained secret; signing always uses the
// newest.
type KeyRing struct {
	mu      sync.RWMutex
	byID    map[uint32]Secret
	current uint32
	nextID  uint32
	retain  int
	order   []uint32 // oldest first
	entropy io.Reader
}

// NewKeyRing creates a key ring that retains up to retain historical
// secrets (minimum 1, the current secret). Entropy defaults to
// crypto/rand.Reader when nil.
func NewKeyRing(retain int, entropy io.Reader) (*KeyRing, error) {
	if retain < 1 {
		retain = 1
	}
	if entropy == nil {
		entropy = rand.Reader
	}
	kr := &KeyRing{
		byID:    make(map[uint32]Secret),
		retain:  retain,
		entropy: entropy,
	}
	if err := kr.Rotate(); err != nil {
		return nil, err
	}
	return kr, nil
}

// Rotate installs a fresh current secret, discarding secrets beyond the
// retention window. Certificates signed under discarded secrets fail
// verification with ErrUnknownKey and must be re-issued.
func (k *KeyRing) Rotate() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := k.nextID
	k.nextID++
	sec, err := NewSecret(id, k.entropy)
	if err != nil {
		return err
	}
	k.byID[id] = sec
	k.order = append(k.order, id)
	k.current = id
	for len(k.order) > k.retain {
		drop := k.order[0]
		k.order = k.order[1:]
		delete(k.byID, drop)
	}
	return nil
}

// CurrentKeyID returns the id of the secret used for new signatures.
func (k *KeyRing) CurrentKeyID() uint32 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.current
}

// Sign signs with the current secret and returns the key id used.
func (k *KeyRing) Sign(principalID string, fields ...[]byte) (Signature, uint32) {
	k.mu.RLock()
	sec := k.byID[k.current]
	k.mu.RUnlock()
	return sec.Sign(principalID, fields...), sec.KeyID
}

// Export returns the retained secrets, oldest first, plus the retention
// window — everything needed to reconstruct an equivalent ring with
// NewKeyRingFromSecrets. Callers own the durability of the result: the
// secrets are the service's ability to verify every certificate it has
// issued.
func (k *KeyRing) Export() (secrets []Secret, retain int) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	secrets = make([]Secret, 0, len(k.order))
	for _, id := range k.order {
		secrets = append(secrets, k.byID[id])
	}
	return secrets, k.retain
}

// NewKeyRingFromSecrets reconstructs a ring from an Export, restoring the
// signing/verification state a service held before a crash: the last
// secret becomes current, and future rotations continue past the highest
// restored key id. Entropy defaults to crypto/rand.Reader when nil.
func NewKeyRingFromSecrets(secrets []Secret, retain int, entropy io.Reader) (*KeyRing, error) {
	if len(secrets) == 0 {
		return nil, errors.New("sign: no secrets to restore")
	}
	if retain < 1 {
		retain = 1
	}
	if entropy == nil {
		entropy = rand.Reader
	}
	kr := &KeyRing{
		byID:    make(map[uint32]Secret),
		retain:  retain,
		entropy: entropy,
	}
	for _, s := range secrets {
		if _, dup := kr.byID[s.KeyID]; dup {
			return nil, fmt.Errorf("sign: duplicate key id %d in restore", s.KeyID)
		}
		kr.byID[s.KeyID] = s
		kr.order = append(kr.order, s.KeyID)
		kr.current = s.KeyID
		if s.KeyID >= kr.nextID {
			kr.nextID = s.KeyID + 1
		}
	}
	for len(kr.order) > kr.retain {
		drop := kr.order[0]
		kr.order = kr.order[1:]
		delete(kr.byID, drop)
	}
	return kr, nil
}

// Verify checks a signature produced under keyID, if that secret is still
// retained.
func (k *KeyRing) Verify(keyID uint32, sig Signature, principalID string, fields ...[]byte) error {
	k.mu.RLock()
	sec, ok := k.byID[keyID]
	k.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownKey, keyID)
	}
	return sec.Verify(sig, principalID, fields...)
}
