package sign

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// zeroReader yields deterministic (zero) entropy for tests that need
// reproducible secrets.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// countingReader yields incrementing bytes so consecutive secrets differ.
type countingReader struct{ n byte }

func (c *countingReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = c.n
		c.n++
	}
	return len(p), nil
}

func TestSignVerifyRoundTrip(t *testing.T) {
	sec := MustNewSecret(1)
	sig := sec.Sign("alice", []byte("role"), []byte("param"))
	if err := sec.Verify(sig, "alice", []byte("role"), []byte("param")); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongPrincipal(t *testing.T) {
	sec := MustNewSecret(1)
	sig := sec.Sign("alice", []byte("f"))
	if err := sec.Verify(sig, "bob", []byte("f")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("stolen certificate verified for wrong principal: %v", err)
	}
}

func TestVerifyRejectsTamperedField(t *testing.T) {
	sec := MustNewSecret(1)
	sig := sec.Sign("alice", []byte("doctor"), []byte("p1"))
	if err := sec.Verify(sig, "alice", []byte("doctor"), []byte("p2")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered field verified: %v", err)
	}
}

func TestVerifyRejectsFieldSplitting(t *testing.T) {
	// Length framing must prevent ["ab","c"] == ["a","bc"] collisions.
	sec := MustNewSecret(1)
	sig := sec.Sign("p", []byte("ab"), []byte("c"))
	if err := sec.Verify(sig, "p", []byte("a"), []byte("bc")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("field-splitting collision: %v", err)
	}
	if err := sec.Verify(sig, "p", []byte("abc")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("field-merging collision: %v", err)
	}
}

func TestVerifyRejectsWrongSecret(t *testing.T) {
	r := &countingReader{}
	s1, err := NewSecret(1, r)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSecret(2, r)
	if err != nil {
		t.Fatal(err)
	}
	sig := s1.Sign("p", []byte("f"))
	if err := s2.Verify(sig, "p", []byte("f")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged signature accepted under different secret: %v", err)
	}
}

func TestNewSecretDeterministicWithEntropy(t *testing.T) {
	a, err := NewSecret(7, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecret(7, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Key[:], b.Key[:]) {
		t.Error("same entropy should give same secret")
	}
}

// Property (I1): any single-bit flip in the signature breaks verification.
func TestQuickBitFlipBreaksSignature(t *testing.T) {
	sec := MustNewSecret(1)
	f := func(principal string, field []byte, bit uint16) bool {
		sig := sec.Sign(principal, field)
		i := int(bit) % (SignatureSize * 8)
		sig[i/8] ^= 1 << uint(i%8)
		return errors.Is(sec.Verify(sig, principal, field), ErrBadSignature)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (I1): valid signatures always verify.
func TestQuickSignVerifyAlways(t *testing.T) {
	sec := MustNewSecret(9)
	f := func(principal string, f1, f2 []byte) bool {
		sig := sec.Sign(principal, f1, f2)
		return sec.Verify(sig, principal, f1, f2) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyRingSignVerify(t *testing.T) {
	kr, err := NewKeyRing(2, &countingReader{})
	if err != nil {
		t.Fatal(err)
	}
	sig, id := kr.Sign("alice", []byte("f"))
	if err := kr.Verify(id, sig, "alice", []byte("f")); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestKeyRingRotationKeepsRecentKeys(t *testing.T) {
	kr, err := NewKeyRing(2, &countingReader{})
	if err != nil {
		t.Fatal(err)
	}
	sig0, id0 := kr.Sign("p", []byte("f"))
	if err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Old signature still verifies within the retention window.
	if err := kr.Verify(id0, sig0, "p", []byte("f")); err != nil {
		t.Fatalf("retained key rejected: %v", err)
	}
	// New signatures use the new key.
	_, id1 := kr.Sign("p", []byte("f"))
	if id1 == id0 {
		t.Error("rotation did not change current key")
	}
	// A second rotation evicts the original key.
	if err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := kr.Verify(id0, sig0, "p", []byte("f")); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("evicted key still accepted: %v", err)
	}
}

func TestKeyRingMinimumRetention(t *testing.T) {
	kr, err := NewKeyRing(0, &countingReader{})
	if err != nil {
		t.Fatal(err)
	}
	sig, id := kr.Sign("p", []byte("x"))
	if err := kr.Verify(id, sig, "p", []byte("x")); err != nil {
		t.Fatalf("current key must always verify: %v", err)
	}
	if err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := kr.Verify(id, sig, "p", []byte("x")); !errors.Is(err, ErrUnknownKey) {
		t.Error("retain=1 ring kept old key after rotation")
	}
}

func TestKeyRingCurrentKeyID(t *testing.T) {
	kr, err := NewKeyRing(3, &countingReader{})
	if err != nil {
		t.Fatal(err)
	}
	before := kr.CurrentKeyID()
	if err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	if kr.CurrentKeyID() == before {
		t.Error("CurrentKeyID unchanged after rotation")
	}
}
