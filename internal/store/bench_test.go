package store

import (
	"fmt"
	"testing"

	"repro/internal/names"
)

func populated(b *testing.B, n int) *Store {
	b.Helper()
	s := New()
	for i := 0; i < n; i++ {
		if _, err := s.Assert("registered",
			names.Atom(fmt.Sprintf("d%d", i%100)),
			names.Atom(fmt.Sprintf("p%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkQueryGroundPointLookup(b *testing.B) {
	s := populated(b, 10000)
	pattern := []names.Term{names.Atom("d50"), names.Atom("p5050")}
	base := names.NewSubstitution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query("registered", pattern, base); len(got) != 1 {
			b.Fatalf("got %d results", len(got))
		}
	}
}

func BenchmarkQueryEnumerate(b *testing.B) {
	s := populated(b, 10000)
	pattern := []names.Term{names.Atom("d50"), names.Var("P")}
	base := names.NewSubstitution()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query("registered", pattern, base); len(got) != 100 {
			b.Fatalf("got %d results", len(got))
		}
	}
}

func BenchmarkAssertRetract(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Assert("r", names.Int(int64(i))); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Retract("r", names.Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
