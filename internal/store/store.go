// Package store provides the embedded fact store that OASIS environmental
// constraints consult. The paper's examples — "the user is a member of a
// group; this may be ascertained by database lookup", "the doctor has the
// patient registered as under his/her care", per-patient exclusion lists —
// are all relation lookups over ground tuples, which is exactly what this
// store models.
//
// The store notifies registered observers on every change so that the
// active security environment (membership rule monitoring, Sect. 4) can
// re-check conditions the moment the underlying facts change, without
// polling. Queries with a fully ground pattern are point lookups; queries
// whose first argument is ground use a first-argument index; other
// patterns scan the relation in deterministic order.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/names"
)

// ErrNotGround is returned when a non-ground tuple is asserted or
// retracted.
var ErrNotGround = errors.New("store facts must be ground")

// ChangeFunc observes assertions (added=true) and retractions
// (added=false). Observers are called under no store lock, after the
// change has been applied, and always in apply order: when concurrent
// mutations race, every observer sees the notifications in exactly the
// sequence the store applied them (a membership-rule monitor or journal
// can never observe a retract-then-assert inversion of an
// assert-then-retract history). A mutation call returns only after its
// own notification has been delivered. Observers must not mutate the
// store synchronously — hand mutations to another goroutine instead.
type ChangeFunc func(relation string, tuple []names.Term, added bool)

// relation holds one relation's tuples plus its indexes.
type relation struct {
	tuples map[string][]names.Term
	// byFirst indexes tuple keys by the first argument's key, so that
	// the common "registered(d1, P)" query shape avoids a full scan.
	byFirst map[string]map[string]struct{}
	// sortedKeys caches deterministic iteration order; nil means dirty.
	sortedKeys []string
}

func newRelation() *relation {
	return &relation{
		tuples:  make(map[string][]names.Term),
		byFirst: make(map[string]map[string]struct{}),
	}
}

// Store is a concurrent in-memory relation store. The zero value is not
// usable; construct with New.
type Store struct {
	mu        sync.RWMutex
	relations map[string]*relation
	observers []ChangeFunc

	// Notification dispatch. Mutations enqueue under mu (so queue order
	// is apply order) and then deliver through dispatchMu, which
	// serialises observer callbacks; delivered counts dequeued items so
	// each mutator can drain exactly until its own notification is out.
	// Releasing mu before delivery used to let two racing mutations of
	// the same fact notify observers in the inverted order.
	dispatchMu sync.Mutex
	notifyq    []notification
	enqueued   uint64 // items ever enqueued (next item's 1-based seq)
	delivered  uint64 // items ever delivered; guarded by dispatchMu
}

// notification is one queued observer delivery.
type notification struct {
	relation string
	tuple    []names.Term
	added    bool
}

// New creates an empty store.
func New() *Store {
	return &Store{relations: make(map[string]*relation)}
}

func termKey(t names.Term) string { return t.Kind.String() + ":" + t.String() }

func tupleKey(tuple []names.Term) string {
	parts := make([]string, len(tuple))
	for i, t := range tuple {
		parts[i] = termKey(t)
	}
	return strings.Join(parts, "\x1f")
}

// Observe registers an observer for all subsequent changes.
func (s *Store) Observe(f ChangeFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, f)
}

// enqueueLocked queues a notification while the caller still holds s.mu
// (write-locked), fixing the queue position to the apply order. It returns
// the notification's 1-based sequence number.
func (s *Store) enqueueLocked(relationName string, tuple []names.Term, added bool) uint64 {
	s.notifyq = append(s.notifyq, notification{relation: relationName, tuple: tuple, added: added})
	s.enqueued++
	return s.enqueued
}

// deliverUntil drains the notification queue, in order, at least until the
// notification with sequence seq has been delivered. Delivery is
// serialised by dispatchMu, so whichever mutator holds it delivers for
// everyone queued ahead of it; mutators queued behind finish the rest when
// their turn comes.
func (s *Store) deliverUntil(seq uint64) {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	for s.delivered < seq {
		s.mu.Lock()
		n := s.notifyq[0]
		s.notifyq = s.notifyq[1:]
		obs := make([]ChangeFunc, len(s.observers))
		copy(obs, s.observers)
		s.mu.Unlock()
		for _, f := range obs {
			f(n.relation, n.tuple, n.added)
		}
		s.delivered++
	}
}

// Assert adds a ground tuple to a relation. Re-asserting an existing fact
// is a no-op (no observer call) and returns false; a new fact returns true.
func (s *Store) Assert(relationName string, tuple ...names.Term) (bool, error) {
	for _, t := range tuple {
		if !t.IsGround() {
			return false, fmt.Errorf("%w: %s in %s", ErrNotGround, t, relationName)
		}
	}
	cp := make([]names.Term, len(tuple))
	copy(cp, tuple)
	key := tupleKey(cp)

	s.mu.Lock()
	rel, ok := s.relations[relationName]
	if !ok {
		rel = newRelation()
		s.relations[relationName] = rel
	}
	if _, exists := rel.tuples[key]; exists {
		s.mu.Unlock()
		return false, nil
	}
	rel.tuples[key] = cp
	rel.sortedKeys = nil
	if len(cp) > 0 {
		fk := termKey(cp[0])
		set, ok := rel.byFirst[fk]
		if !ok {
			set = make(map[string]struct{})
			rel.byFirst[fk] = set
		}
		set[key] = struct{}{}
	}
	seq := s.enqueueLocked(relationName, cp, true)
	s.mu.Unlock()

	s.deliverUntil(seq)
	return true, nil
}

// Retract removes a ground tuple; it reports whether the fact was present.
func (s *Store) Retract(relationName string, tuple ...names.Term) (bool, error) {
	for _, t := range tuple {
		if !t.IsGround() {
			return false, fmt.Errorf("%w: %s in %s", ErrNotGround, t, relationName)
		}
	}
	key := tupleKey(tuple)
	s.mu.Lock()
	rel, ok := s.relations[relationName]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	fact, exists := rel.tuples[key]
	if !exists {
		s.mu.Unlock()
		return false, nil
	}
	delete(rel.tuples, key)
	rel.sortedKeys = nil
	if len(fact) > 0 {
		fk := termKey(fact[0])
		if set, ok := rel.byFirst[fk]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(rel.byFirst, fk)
			}
		}
	}
	if len(rel.tuples) == 0 {
		delete(s.relations, relationName)
	}
	seq := s.enqueueLocked(relationName, fact, false)
	s.mu.Unlock()

	s.deliverUntil(seq)
	return true, nil
}

// Contains reports whether the exact ground tuple is present.
func (s *Store) Contains(relationName string, tuple ...names.Term) bool {
	key := tupleKey(tuple)
	s.mu.RLock()
	defer s.mu.RUnlock()
	rel, ok := s.relations[relationName]
	if !ok {
		return false
	}
	_, exists := rel.tuples[key]
	return exists
}

// Query returns one extended substitution for every stored tuple of the
// relation that unifies with pattern under base. Results are ordered
// deterministically (by tuple key) so policy evaluation is reproducible.
func (s *Store) Query(relationName string, pattern []names.Term, base names.Substitution) []names.Substitution {
	resolved := base.ApplyAll(pattern)
	ground := true
	for _, t := range resolved {
		if !t.IsGround() {
			ground = false
			break
		}
	}
	// Fast path 1: a fully ground pattern is a point lookup.
	if ground {
		if s.Contains(relationName, resolved...) {
			return []names.Substitution{base.Clone()}
		}
		return nil
	}

	s.mu.Lock()
	rel, ok := s.relations[relationName]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	var keys []string
	switch {
	case len(resolved) > 0 && resolved[0].IsGround():
		// Fast path 2: first argument ground — use the index. Copy and
		// sort the (typically small) candidate set.
		set := rel.byFirst[termKey(resolved[0])]
		keys = make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	default:
		// Full deterministic scan, with the order cached until the
		// next mutation.
		if rel.sortedKeys == nil {
			rel.sortedKeys = make([]string, 0, len(rel.tuples))
			for k := range rel.tuples {
				rel.sortedKeys = append(rel.sortedKeys, k)
			}
			sort.Strings(rel.sortedKeys)
		}
		keys = rel.sortedKeys
	}
	tuples := make([][]names.Term, 0, len(keys))
	for _, k := range keys {
		tuples = append(tuples, rel.tuples[k])
	}
	s.mu.Unlock()

	var out []names.Substitution
	for _, tuple := range tuples {
		if ext, ok := names.UnifyTuples(pattern, tuple, base); ok {
			out = append(out, ext)
		}
	}
	return out
}

// Count reports the number of facts in a relation.
func (s *Store) Count(relationName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rel, ok := s.relations[relationName]
	if !ok {
		return 0
	}
	return len(rel.tuples)
}

// Relations lists the non-empty relation names, sorted.
func (s *Store) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.relations))
	for r := range s.relations {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
