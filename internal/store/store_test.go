package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/names"
)

func TestAssertContains(t *testing.T) {
	s := New()
	added, err := s.Assert("registered", names.Atom("d1"), names.Atom("p1"))
	if err != nil || !added {
		t.Fatalf("Assert = (%v,%v)", added, err)
	}
	if !s.Contains("registered", names.Atom("d1"), names.Atom("p1")) {
		t.Error("fact not found after Assert")
	}
	if s.Contains("registered", names.Atom("d1"), names.Atom("p2")) {
		t.Error("absent fact reported present")
	}
}

func TestAssertIdempotent(t *testing.T) {
	s := New()
	if _, err := s.Assert("r", names.Int(1)); err != nil {
		t.Fatal(err)
	}
	added, err := s.Assert("r", names.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("duplicate Assert reported added")
	}
	if s.Count("r") != 1 {
		t.Errorf("Count = %d", s.Count("r"))
	}
}

func TestAssertRejectsVariables(t *testing.T) {
	s := New()
	if _, err := s.Assert("r", names.Var("X")); !errors.Is(err, ErrNotGround) {
		t.Errorf("variable asserted: %v", err)
	}
	if _, err := s.Retract("r", names.Var("X")); !errors.Is(err, ErrNotGround) {
		t.Errorf("variable retracted: %v", err)
	}
}

func TestRetract(t *testing.T) {
	s := New()
	if _, err := s.Assert("r", names.Atom("a")); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Retract("r", names.Atom("a"))
	if err != nil || !ok {
		t.Fatalf("Retract = (%v,%v)", ok, err)
	}
	if s.Contains("r", names.Atom("a")) {
		t.Error("fact survives retraction")
	}
	ok, err = s.Retract("r", names.Atom("a"))
	if err != nil || ok {
		t.Errorf("second Retract = (%v,%v), want (false,nil)", ok, err)
	}
	// Retracting from an unknown relation is a no-op.
	ok, err = s.Retract("missing", names.Atom("a"))
	if err != nil || ok {
		t.Errorf("Retract from missing relation = (%v,%v)", ok, err)
	}
}

func TestKeyCollisionAcrossKinds(t *testing.T) {
	// Atom("7") and Int(7) must be distinct facts.
	s := New()
	if _, err := s.Assert("r", names.Atom("7")); err != nil {
		t.Fatal(err)
	}
	if s.Contains("r", names.Int(7)) {
		t.Error("atom/int collision in tuple keys")
	}
}

func TestQueryUnifies(t *testing.T) {
	s := New()
	mustAssert := func(tuple ...names.Term) {
		t.Helper()
		if _, err := s.Assert("registered", tuple...); err != nil {
			t.Fatal(err)
		}
	}
	mustAssert(names.Atom("d1"), names.Atom("p1"))
	mustAssert(names.Atom("d1"), names.Atom("p2"))
	mustAssert(names.Atom("d2"), names.Atom("p3"))

	// Who is registered with d1?
	results := s.Query("registered",
		[]names.Term{names.Atom("d1"), names.Var("P")},
		names.NewSubstitution())
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	var ps []names.Term
	for _, sub := range results {
		ps = append(ps, sub.Apply(names.Var("P")))
	}
	if ps[0] != names.Atom("p1") || ps[1] != names.Atom("p2") {
		t.Errorf("results %v not deterministic/complete", ps)
	}
}

func TestQueryRespectsBaseBindings(t *testing.T) {
	s := New()
	if _, err := s.Assert("reg", names.Atom("d1"), names.Atom("p1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assert("reg", names.Atom("d2"), names.Atom("p2")); err != nil {
		t.Fatal(err)
	}
	base := names.NewSubstitution()
	base["D"] = names.Atom("d2")
	results := s.Query("reg", []names.Term{names.Var("D"), names.Var("P")}, base)
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if got := results[0].Apply(names.Var("P")); got != names.Atom("p2") {
		t.Errorf("P = %v", got)
	}
	// Base substitution must not be mutated.
	if len(base) != 1 {
		t.Errorf("base mutated: %v", base)
	}
}

func TestQueryEmptyRelation(t *testing.T) {
	s := New()
	if got := s.Query("none", []names.Term{names.Var("X")}, names.NewSubstitution()); got != nil {
		t.Errorf("Query on empty relation = %v", got)
	}
}

func TestObserve(t *testing.T) {
	s := New()
	type change struct {
		rel   string
		added bool
	}
	var mu sync.Mutex
	var changes []change
	s.Observe(func(rel string, tuple []names.Term, added bool) {
		mu.Lock()
		changes = append(changes, change{rel, added})
		mu.Unlock()
	})
	if _, err := s.Assert("r", names.Atom("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assert("r", names.Atom("a")); err != nil { // duplicate: no event
		t.Fatal(err)
	}
	if _, err := s.Retract("r", names.Atom("a")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2: %v", len(changes), changes)
	}
	if !changes[0].added || changes[1].added {
		t.Errorf("change sequence wrong: %v", changes)
	}
}

func TestRelations(t *testing.T) {
	s := New()
	if _, err := s.Assert("b", names.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assert("a", names.Int(1)); err != nil {
		t.Fatal(err)
	}
	rels := s.Relations()
	if len(rels) != 2 || rels[0] != "a" || rels[1] != "b" {
		t.Errorf("Relations = %v", rels)
	}
	if _, err := s.Retract("a", names.Int(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Relations(); len(got) != 1 || got[0] != "b" {
		t.Errorf("empty relation not removed: %v", got)
	}
}

func TestConcurrentAssertQuery(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, err := s.Assert("r", names.Int(int64(g*1000+i)))
				if err != nil {
					t.Error(err)
					return
				}
				s.Query("r", []names.Term{names.Var("X")}, names.NewSubstitution())
			}
		}(g)
	}
	wg.Wait()
	if s.Count("r") != 800 {
		t.Errorf("Count = %d, want 800", s.Count("r"))
	}
}

func TestQueryFirstArgIndexAfterRetract(t *testing.T) {
	s := New()
	for _, p := range []string{"p1", "p2", "p3"} {
		if _, err := s.Assert("reg", names.Atom("d1"), names.Atom(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Retract("reg", names.Atom("d1"), names.Atom("p2")); err != nil {
		t.Fatal(err)
	}
	got := s.Query("reg", []names.Term{names.Atom("d1"), names.Var("P")}, names.NewSubstitution())
	if len(got) != 2 {
		t.Fatalf("indexed query returned %d results, want 2", len(got))
	}
	for _, sub := range got {
		if p := sub.Apply(names.Var("P")); p == names.Atom("p2") {
			t.Error("retracted fact returned by indexed query")
		}
	}
	// Unindexed shape (variable first argument) still works and stays
	// deterministic across mutations.
	scan := s.Query("reg", []names.Term{names.Var("D"), names.Var("P")}, names.NewSubstitution())
	if len(scan) != 2 {
		t.Fatalf("scan returned %d results", len(scan))
	}
	if _, err := s.Assert("reg", names.Atom("d0"), names.Atom("p9")); err != nil {
		t.Fatal(err)
	}
	scan2 := s.Query("reg", []names.Term{names.Var("D"), names.Var("P")}, names.NewSubstitution())
	if len(scan2) != 3 {
		t.Fatalf("post-mutation scan returned %d results (stale cache?)", len(scan2))
	}
	if scan2[0].Apply(names.Var("D")) != names.Atom("d0") {
		t.Errorf("scan order not deterministic: first D = %v", scan2[0].Apply(names.Var("D")))
	}
}

func TestQueryZeroArityRelation(t *testing.T) {
	s := New()
	if _, err := s.Assert("flag"); err != nil {
		t.Fatal(err)
	}
	got := s.Query("flag", nil, names.NewSubstitution())
	if len(got) != 1 {
		t.Fatalf("zero-arity query returned %d results", len(got))
	}
	if _, err := s.Retract("flag"); err != nil {
		t.Fatal(err)
	}
	if got := s.Query("flag", nil, names.NewSubstitution()); len(got) != 0 {
		t.Fatalf("retracted zero-arity fact still queryable: %v", got)
	}
}

// Property: Assert then Contains always holds; Retract then Contains never
// holds.
func TestQuickAssertRetract(t *testing.T) {
	s := New()
	f := func(rel string, a string, n int64) bool {
		if rel == "" {
			rel = "r"
		}
		tuple := []names.Term{names.Str(a), names.Int(n)}
		if _, err := s.Assert(rel, tuple...); err != nil {
			return false
		}
		if !s.Contains(rel, tuple...) {
			return false
		}
		if _, err := s.Retract(rel, tuple...); err != nil {
			return false
		}
		return !s.Contains(rel, tuple...)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestObserverOrderUnderContention is the regression test for the
// observer-ordering race: Assert/Retract used to release the store lock
// before notifying, so two racing mutations of the same fact could deliver
// their observer callbacks inverted (retract-then-assert for an
// assert-then-retract history). With apply-order dispatch, the observed
// stream for a single fact must be a strict added/retracted alternation
// starting with added. Run with -race.
func TestObserverOrderUnderContention(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var seen []bool
	s.Observe(func(rel string, tuple []names.Term, added bool) {
		mu.Lock()
		seen = append(seen, added)
		mu.Unlock()
	})

	tuple := []names.Term{names.Atom("contended")}
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Assert("f", tuple...)  //nolint:errcheck
				s.Retract("f", tuple...) //nolint:errcheck
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 || len(seen)%2 != 0 {
		t.Fatalf("observed %d notifications, want a positive even count", len(seen))
	}
	for i, added := range seen {
		if want := i%2 == 0; added != want {
			t.Fatalf("notification %d: added=%v, want %v — observer order inverted", i, added, want)
		}
	}
}

// TestObserverDeliveredBeforeReturn checks that a mutation does not return
// before its own notification has been delivered.
func TestObserverDeliveredBeforeReturn(t *testing.T) {
	s := New()
	var delivered atomic.Int64
	s.Observe(func(string, []names.Term, bool) { delivered.Add(1) })
	for i := 0; i < 50; i++ {
		if _, err := s.Assert("r", names.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if got := delivered.Load(); got != int64(i+1) {
			t.Fatalf("after assert %d: %d notifications delivered", i, got)
		}
	}
}
