package trust

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
)

// Simulation builds synthetic populations of principals and services with
// honest and Byzantine behaviour, used by the Sect. 6 experiment (E8). All
// randomness is seeded, so runs are reproducible.
type Simulation struct {
	rng *rand.Rand
	clk *clock.Simulated

	// Honest authority shared by well-behaved domains.
	HonestAuthority *audit.Authority
	// RogueAuthority certifies the collusion ring's fake interactions.
	RogueAuthority *audit.Authority

	Directory *AuthorityDirectory
}

// NewSimulation creates a seeded simulation.
func NewSimulation(seed int64) (*Simulation, error) {
	clk := clock.NewSimulated(time.Date(2001, 11, 12, 0, 0, 0, 0, time.UTC))
	honest, err := audit.NewAuthority("honest_domain_civ", clk)
	if err != nil {
		return nil, fmt.Errorf("simulation: %w", err)
	}
	rogue, err := audit.NewAuthority("rogue_domain_civ", clk)
	if err != nil {
		return nil, fmt.Errorf("simulation: %w", err)
	}
	return &Simulation{
		rng:             rand.New(rand.NewSource(seed)),
		clk:             clk,
		HonestAuthority: honest,
		RogueAuthority:  rogue,
		Directory:       NewAuthorityDirectory(honest, rogue),
	}, nil
}

// HonestHistory generates n interactions for a party with the given
// success rate, certified by the honest authority.
func (s *Simulation) HonestHistory(party string, n int, successRate float64) []audit.Certificate {
	out := make([]audit.Certificate, 0, n)
	for i := 0; i < n; i++ {
		s.clk.Advance(time.Hour)
		outcome := audit.OutcomeFulfilled
		if s.rng.Float64() > successRate {
			outcome = audit.OutcomeClientDefault
		}
		service := fmt.Sprintf("service_%d", s.rng.Intn(20))
		out = append(out, s.HonestAuthority.Issue(party, service, "use", outcome))
	}
	return out
}

// CollusionHistory generates a false history of n always-fulfilled
// interactions between ring members, certified by the ring's own rogue
// authority (the paper's "a client and service might collude to build up a
// false history of trustworthiness").
func (s *Simulation) CollusionHistory(member string, ring []string, n int) []audit.Certificate {
	out := make([]audit.Certificate, 0, n)
	for i := 0; i < n; i++ {
		s.clk.Advance(time.Minute)
		peer := ring[s.rng.Intn(len(ring))]
		out = append(out, s.RogueAuthority.Issue(member, peer, "use", audit.OutcomeFulfilled))
	}
	return out
}

// ForgedHistory generates certificates that were never issued by any
// authority (signatures will not verify).
func (s *Simulation) ForgedHistory(party string, n int) []audit.Certificate {
	out := make([]audit.Certificate, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, audit.Certificate{
			Authority: "honest_domain_civ",
			Serial:    uint64(1_000_000 + i),
			Client:    party,
			Service:   "service_x",
			Method:    "use",
			Outcome:   audit.OutcomeFulfilled,
			At:        s.clk.Now(),
		})
	}
	return out
}

// DomainAwarePolicy returns a policy that trusts the honest domain fully
// and heavily discounts the rogue domain, the defence Sect. 6 sketches.
func DomainAwarePolicy(rogueWeight float64) Policy {
	p := DefaultPolicy()
	p.AuthorityWeight = func(authority string) float64 {
		if authority == "rogue_domain_civ" {
			return rogueWeight
		}
		return 1
	}
	return p
}
