// Package trust implements the speculative web-of-trust layer of Sect. 6:
// roving principals and previously unknown services exchange audit
// certificates as "checkable credentials which provide evidence of previous
// successful interactions", validate them with the issuing authorities, and
// take a calculated risk on whether to proceed. The engine models the
// paper's caveats: colluding parties building false histories, rogue
// authorities issuing valueless certificates or repudiating genuine ones —
// "the domain of the auditing service for a certificate is a factor that
// must be taken into account when assessing the risk".
package trust

import (
	"errors"
	"sort"

	"repro/internal/audit"
)

// Validator checks an audit certificate with its issuing authority; it is
// how the relying party "locates the issuing service" and calls back.
type Validator func(c audit.Certificate) error

// AuthorityDirectory resolves authorities by name; the normal Validator.
type AuthorityDirectory struct {
	authorities map[string]*audit.Authority
}

// NewAuthorityDirectory builds a directory over the known authorities.
func NewAuthorityDirectory(as ...*audit.Authority) *AuthorityDirectory {
	d := &AuthorityDirectory{authorities: make(map[string]*audit.Authority, len(as))}
	for _, a := range as {
		d.authorities[a.Name()] = a
	}
	return d
}

// Add registers another authority.
func (d *AuthorityDirectory) Add(a *audit.Authority) { d.authorities[a.Name()] = a }

// ErrUnknownAuthority is returned when a certificate names an authority the
// relying party cannot locate.
var ErrUnknownAuthority = errors.New("unknown audit authority")

// Validate implements Validator by dispatching to the named authority.
func (d *AuthorityDirectory) Validate(c audit.Certificate) error {
	a, ok := d.authorities[c.Authority]
	if !ok {
		return ErrUnknownAuthority
	}
	return a.Validate(c)
}

// Policy sets the risk appetite of a relying party.
type Policy struct {
	// MinEvidence is the minimum number of validated certificates
	// required before any trust is extended (below it, Decide refuses —
	// the analogue of refusing credit to someone with no credit record).
	MinEvidence int
	// MinScore is the trust score threshold in [0,1] for proceeding.
	MinScore float64
	// AuthorityWeight discounts evidence by issuing authority; unknown
	// or distrusted domains should weigh less (Sect. 6: the domain of
	// the auditing service is a risk factor). Nil weights everything 1.
	AuthorityWeight func(authority string) float64
	// MaxPerAuthority caps how many certificates from a single
	// authority count, the defence against a collusion ring pumping its
	// own domain's authority. Zero means no cap.
	MaxPerAuthority int
}

// DefaultPolicy is a reasonable starting policy: some history required, a
// two-thirds score bar, at most 10 certificates counted per authority.
func DefaultPolicy() Policy {
	return Policy{MinEvidence: 3, MinScore: 0.67, MaxPerAuthority: 10}
}

// Decision is the outcome of a trust evaluation.
type Decision struct {
	// Proceed reports whether the party should be trusted under the
	// policy.
	Proceed bool
	// Score is the weighted success ratio over counted evidence.
	Score float64
	// Evidence is the number of certificates that were validated and
	// counted.
	Evidence int
	// Rejected is the number of certificates that failed validation
	// (forged, repudiated, or from unlocatable authorities).
	Rejected int
	// Reason explains a refusal.
	Reason string
}

// Engine evaluates interaction histories under a policy.
type Engine struct {
	policy   Policy
	validate Validator
}

// NewEngine builds an engine. validate must not be nil.
func NewEngine(p Policy, validate Validator) *Engine {
	return &Engine{policy: p, validate: validate}
}

// outcomeValue scores an outcome from the perspective of the party being
// evaluated.
func outcomeValue(c audit.Certificate, party string) float64 {
	switch c.Outcome {
	case audit.OutcomeFulfilled:
		return 1
	case audit.OutcomeClientDefault:
		if c.Client == party {
			return 0
		}
		return 1 // the service behaved; the client defaulted
	case audit.OutcomeServiceDefault:
		if c.Service == party {
			return 0
		}
		return 1
	default:
		return 0
	}
}

// Decide evaluates a party's presented history. Certificates failing
// validation are rejected; the rest are weighted by authority and capped
// per authority, then the weighted success ratio is compared against the
// policy.
func (e *Engine) Decide(party string, history []audit.Certificate) Decision {
	weight := e.policy.AuthorityWeight
	if weight == nil {
		weight = func(string) float64 { return 1 }
	}

	// Deterministic processing order: newest first so per-authority caps
	// keep the most recent evidence.
	sorted := make([]audit.Certificate, len(history))
	copy(sorted, history)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At.After(sorted[j].At) })

	perAuthority := make(map[string]int)
	var sumWeight, sumValue float64
	counted, rejected := 0, 0
	for _, c := range sorted {
		if c.Client != party && c.Service != party {
			rejected++ // not evidence about this party at all
			continue
		}
		if err := e.validate(c); err != nil {
			rejected++
			continue
		}
		if e.policy.MaxPerAuthority > 0 && perAuthority[c.Authority] >= e.policy.MaxPerAuthority {
			continue
		}
		w := weight(c.Authority)
		if w <= 0 {
			continue
		}
		perAuthority[c.Authority]++
		counted++
		sumWeight += w
		sumValue += w * outcomeValue(c, party)
	}

	d := Decision{Evidence: counted, Rejected: rejected}
	if counted < e.policy.MinEvidence {
		d.Reason = "insufficient validated history"
		return d
	}
	d.Score = sumValue / sumWeight
	if d.Score < e.policy.MinScore {
		d.Reason = "score below threshold"
		return d
	}
	d.Proceed = true
	return d
}

// MutualDecide evaluates both sides of a prospective interaction, the
// symmetric check Sect. 6 describes ("Both parties should be able to
// present checkable credentials").
func (e *Engine) MutualDecide(client string, clientHistory []audit.Certificate,
	service string, serviceHistory []audit.Certificate) (clientView, serviceView Decision) {
	// The service evaluates the client's history, and vice versa.
	serviceView = e.Decide(client, clientHistory)
	clientView = e.Decide(service, serviceHistory)
	return clientView, serviceView
}
