package trust

import (
	"testing"

	"repro/internal/audit"
)

func sim(t *testing.T) *Simulation {
	t.Helper()
	s, err := NewSimulation(42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHonestPartyTrusted(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	hist := s.HonestHistory("alice", 20, 0.95)
	d := e.Decide("alice", hist)
	if !d.Proceed {
		t.Errorf("honest party refused: %+v", d)
	}
	if d.Score < 0.8 {
		t.Errorf("score = %v", d.Score)
	}
}

func TestDefaulterRefused(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	hist := s.HonestHistory("mallory", 20, 0.2)
	d := e.Decide("mallory", hist)
	if d.Proceed {
		t.Errorf("habitual defaulter trusted: %+v", d)
	}
	if d.Reason != "score below threshold" {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestNoHistoryRefused(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	d := e.Decide("newcomer", nil)
	if d.Proceed {
		t.Error("empty history trusted")
	}
	if d.Reason != "insufficient validated history" {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestForgedCertificatesRejected(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	hist := s.ForgedHistory("mallory", 10)
	d := e.Decide("mallory", hist)
	if d.Proceed {
		t.Errorf("forged history trusted: %+v", d)
	}
	if d.Rejected != 10 || d.Evidence != 0 {
		t.Errorf("rejected=%d evidence=%d", d.Rejected, d.Evidence)
	}
}

func TestUnknownAuthorityRejected(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	hist := s.HonestHistory("alice", 5, 1)
	for i := range hist {
		hist[i].Authority = "nowhere_civ"
	}
	d := e.Decide("alice", hist)
	if d.Evidence != 0 || d.Proceed {
		t.Errorf("unlocatable authority counted: %+v", d)
	}
}

func TestIrrelevantCertificatesIgnored(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	// Mallory presents someone else's good history.
	hist := s.HonestHistory("alice", 10, 1)
	d := e.Decide("mallory", hist)
	if d.Evidence != 0 || d.Proceed {
		t.Errorf("borrowed history counted: %+v", d)
	}
}

func TestCollusionDefeatsNaivePolicy(t *testing.T) {
	// Without authority weighting, the ring's fake history is accepted:
	// the attack the paper warns about.
	s := sim(t)
	naive := NewEngine(DefaultPolicy(), s.Directory.Validate)
	ring := []string{"ring_a", "ring_b", "ring_c"}
	hist := s.CollusionHistory("ring_a", ring, 20)
	if d := naive.Decide("ring_a", hist); !d.Proceed {
		t.Errorf("expected the naive policy to be fooled, got %+v", d)
	}
}

func TestDomainWeightingDefeatsCollusion(t *testing.T) {
	s := sim(t)
	wary := NewEngine(DomainAwarePolicy(0), s.Directory.Validate)
	ring := []string{"ring_a", "ring_b", "ring_c"}
	hist := s.CollusionHistory("ring_a", ring, 20)
	d := wary.Decide("ring_a", hist)
	if d.Proceed {
		t.Errorf("rogue-domain evidence still trusted: %+v", d)
	}
	// An honest party remains trusted under the same wary policy.
	honest := s.HonestHistory("alice", 20, 0.95)
	if d := wary.Decide("alice", honest); !d.Proceed {
		t.Errorf("wary policy refuses honest party: %+v", d)
	}
}

func TestRepudiatingAuthorityDestroysHistory(t *testing.T) {
	// The paper's repudiation risk: a rogue domain disowns certificates
	// issued to clients who acted in good faith.
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	hist := s.HonestHistory("alice", 10, 1)
	s.HonestAuthority.SetRepudiating(true)
	d := e.Decide("alice", hist)
	if d.Proceed || d.Evidence != 0 {
		t.Errorf("repudiated history still counted: %+v", d)
	}
}

func TestPerAuthorityCap(t *testing.T) {
	s := sim(t)
	p := DefaultPolicy()
	p.MaxPerAuthority = 5
	e := NewEngine(p, s.Directory.Validate)
	hist := s.HonestHistory("alice", 50, 1)
	d := e.Decide("alice", hist)
	if d.Evidence != 5 {
		t.Errorf("evidence = %d, want capped at 5", d.Evidence)
	}
}

func TestMutualDecide(t *testing.T) {
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	clientHist := s.HonestHistory("alice", 10, 1)
	serviceHist := s.HonestHistory("svc_far_away", 10, 0.1)
	clientView, serviceView := e.MutualDecide("alice", clientHist, "svc_far_away", serviceHist)
	if !serviceView.Proceed {
		t.Errorf("service should trust alice: %+v", serviceView)
	}
	if clientView.Proceed {
		t.Errorf("alice should not trust the flaky service: %+v", clientView)
	}
}

func TestHistoryFilteringLimitation(t *testing.T) {
	// A known limitation of self-presented histories (inherent in the
	// paper's Sect. 6 proposal): a party can omit its failures. The
	// certificates it presents all validate, so the engine cannot see
	// what is missing — evidence thresholds and per-authority caps bound
	// the damage but cannot eliminate it. This test pins the behaviour
	// so the limitation stays documented rather than silently assumed
	// away.
	s := sim(t)
	e := NewEngine(DefaultPolicy(), s.Directory.Validate)
	full := s.HonestHistory("mallory", 30, 0.3) // mostly defaults
	var filtered []audit.Certificate
	for _, c := range full {
		if c.Outcome == audit.OutcomeFulfilled {
			filtered = append(filtered, c)
		}
	}
	if len(filtered) < DefaultPolicy().MinEvidence {
		t.Skip("seeded history has too few successes to demonstrate filtering")
	}
	if d := e.Decide("mallory", full); d.Proceed {
		t.Fatalf("full history should be refused: %+v", d)
	}
	if d := e.Decide("mallory", filtered); !d.Proceed {
		t.Fatalf("expected the filtered history to be (wrongly) accepted — the documented limitation: %+v", d)
	}
}

func TestOutcomePerspective(t *testing.T) {
	// A client-default certificate counts against the client but not
	// against the service.
	s := sim(t)
	e := NewEngine(Policy{MinEvidence: 1, MinScore: 0.5}, s.Directory.Validate)
	c := s.HonestAuthority.Issue("bad_client", "good_service", "use", audit.OutcomeClientDefault)
	if d := e.Decide("bad_client", []audit.Certificate{c}); d.Proceed {
		t.Errorf("defaulting client trusted: %+v", d)
	}
	if d := e.Decide("good_service", []audit.Certificate{c}); !d.Proceed {
		t.Errorf("innocent service penalised: %+v", d)
	}
	// And symmetrically for service defaults.
	c2 := s.HonestAuthority.Issue("good_client", "bad_service", "use", audit.OutcomeServiceDefault)
	if d := e.Decide("bad_service", []audit.Certificate{c2}); d.Proceed {
		t.Errorf("defaulting service trusted: %+v", d)
	}
	if d := e.Decide("good_client", []audit.Certificate{c2}); !d.Proceed {
		t.Errorf("innocent client penalised: %+v", d)
	}
}
