// Churn is the million-principal capacity harness (E16): where workload.Run
// checks the active-security invariants on a small richly-connected world,
// Churn drives a large synthetic principal population through the
// session-lifecycle storms a big deployment sees — login storms, role
// activation bursts, skewed validation traffic with continuous
// revoke/re-login churn, appointment-expiry waves and a deep revocation
// cascade — against live services, and measures what that population costs
// to keep resident and to validate.
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// ChurnConfig parameterises a capacity run. All randomness derives from
// Seed.
type ChurnConfig struct {
	Seed int64
	// Principals is the resident population: each principal logs in at
	// the issuer and enters a role at the consumer, so the steady state
	// holds two credential records and one cached validation per
	// principal.
	Principals int
	// Ops is the number of validation operations in the churn phase.
	Ops int
	// HotFrac is the fraction of principals that receive 90% of the
	// churn-phase traffic (a hot working set; the remaining 10% of ops
	// spread uniformly). <=0 or >=1 disables the skew.
	HotFrac float64
	// RevokeEvery deactivates a random principal's login every N churn
	// ops — collapsing their entered role by cascade — and immediately
	// logs them back in (0 disables revocation churn).
	RevokeEvery int
	// ApptWaves and ApptsPerWave drive the appointment-expiry phase:
	// each wave issues a batch of short-lived appointment certificates,
	// confirms they authorize, then advances the simulated clock past
	// their expiry and confirms they no longer do.
	ApptWaves    int
	ApptsPerWave int
	// CascadeCerts sizes the final revocation-cascade phase: one root
	// login credential with this many dependent role entries, collapsed
	// by a single deactivation.
	CascadeCerts int
	// CacheMaxEntries bounds the consumer's ECR validation cache
	// (core.Config.CacheMaxEntries; 0 = unbounded).
	CacheMaxEntries int
	// Baseline reconstructs the pre-capacity resident layout inside the
	// same harness: the pointer-per-record store (core.NewBaselineRecords),
	// term interning disabled, and an unbounded validation cache. The
	// bytes-per-principal improvement in EXPERIMENTS.md E16 is compact
	// (Baseline=false) measured against this.
	Baseline bool
}

// ChurnResult reports what a capacity run measured.
type ChurnResult struct {
	Principals int
	Baseline   bool

	// Resident-state footprint after the login storm and activation
	// burst settle (heap growth over the harness start, post-GC).
	ResidentBytes     int64
	BytesPerPrincipal float64
	ResidentCRs       int64 // live credential records, issuer + consumer
	CachedValidations int64 // resident ECR cache entries at the consumer
	InternEntries     int64 // canonical intern table population
	InternBytes       int64
	PopulateElapsed   time.Duration

	// Churn-phase validation latency and allocation profile.
	Ops          int
	P50Ns        int64
	P99Ns        int64
	AllocsPerOp  float64
	Authorized   int
	Denied       int
	Revocations  int
	Relogins     int
	ChurnElapsed time.Duration

	// Appointment-expiry waves.
	ApptIssued  int
	ApptExpired int

	// Cascade collapse: one root deactivation collapsing CascadeCerts
	// dependent role entries.
	CascadeCerts      int
	CascadeCollapseNs int64
	CascadeOK         bool

	Violations []string
}

// Churn executes the capacity workload and returns its measurements. Any
// entry in Violations is a bug in the engine or the harness.
func Churn(cfg ChurnConfig) (ChurnResult, error) {
	if cfg.Principals < 1 || cfg.Ops < 1 {
		return ChurnResult{}, fmt.Errorf("churn: principals and ops must be positive")
	}
	if cfg.Baseline {
		// The pre-capacity world never interned; restore the default for
		// whoever runs next in this process.
		names.SetInterning(false)
		defer names.SetInterning(true)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	broker := event.NewBroker()
	defer broker.Close()
	bus := rpc.NewLoopback()
	clk := clock.NewSimulated(time.Date(2001, 11, 12, 8, 0, 0, 0, time.UTC))

	newRecords := func() core.RecordStore {
		if cfg.Baseline {
			return core.NewBaselineRecords()
		}
		return nil // service-local compact store
	}
	cacheMax := cfg.CacheMaxEntries
	if cfg.Baseline {
		cacheMax = 0 // the classic ECR never evicted
	}

	res := ChurnResult{Principals: cfg.Principals, Baseline: cfg.Baseline}

	// Heap baseline before any service or principal state exists.
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapStart := int64(ms.HeapAlloc)

	login, err := core.NewService(core.Config{
		Name: "login",
		Policy: policy.MustParse(`
login.user <- env ok.
auth appoint_badge <- login.user.
`),
		Broker:  broker,
		Caller:  bus,
		Clock:   clk,
		Records: newRecords(),
	})
	if err != nil {
		return ChurnResult{}, err
	}
	defer login.Close()
	login.Env().Register("ok", func(args []names.Term, s names.Substitution) []names.Substitution {
		return []names.Substitution{s.Clone()}
	})
	bus.Register("login", login.Handler())

	guard, err := core.NewService(core.Config{
		Name: "guard",
		Policy: policy.MustParse(`
guard.inside <- login.user keep [1].
auth enter <- login.user.
auth enter_badged <- appt login.badge.
`),
		Broker:           broker,
		Caller:           bus,
		Clock:            clk,
		Records:          newRecords(),
		CacheValidations: true,
		CacheMaxEntries:  cacheMax,
	})
	if err != nil {
		return ChurnResult{}, err
	}
	defer guard.Close()
	bus.Register("guard", guard.Handler())

	userRole := names.MustRole(names.MustRoleName("login", "user", 0))
	insideRole := names.MustRole(names.MustRoleName("guard", "inside", 0))

	principalID := func(i int) string { return fmt.Sprintf("p%07d", i) }

	// Phase 1 — login storm + role-activation burst. Each principal logs
	// in (one issuer credential record) and enters guard.inside with it
	// (one callback validation that lands in the ECR cache, one consumer
	// credential record). The harness keeps only the two RMCs per
	// principal — what a client holds.
	start := time.Now()
	logins := make([]cert.RMC, cfg.Principals)
	entries := make([]cert.RMC, cfg.Principals)
	enter := func(i int) error {
		rmc, err := login.Activate(principalID(i), userRole, core.Presented{})
		if err != nil {
			return fmt.Errorf("login %d: %w", i, err)
		}
		logins[i] = rmc
		inside, err := guard.Activate(principalID(i), insideRole, core.Presented{RMCs: []cert.RMC{rmc}})
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		entries[i] = inside
		return nil
	}
	for i := 0; i < cfg.Principals; i++ {
		if err := enter(i); err != nil {
			return ChurnResult{}, err
		}
	}
	broker.Quiesce()
	res.PopulateElapsed = time.Since(start)

	runtime.GC()
	runtime.ReadMemStats(&ms)
	res.ResidentBytes = int64(ms.HeapAlloc) - heapStart
	res.BytesPerPrincipal = float64(res.ResidentBytes) / float64(cfg.Principals)
	res.ResidentCRs = login.ResidentCRs() + guard.ResidentCRs()
	res.CachedValidations = guard.CachedValidations()
	res.InternEntries, res.InternBytes = names.InternStats()
	if res.ResidentCRs < int64(2*cfg.Principals) {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"resident CRs %d < 2x principals %d after populate", res.ResidentCRs, cfg.Principals))
	}

	// Phase 2 — churn: skewed validation traffic with revoke/re-login
	// storms riding along. Latencies are measured per op; the allocation
	// profile is the malloc-count delta over the whole phase (revocation
	// churn included — that is what a live system pays).
	hot := int(float64(cfg.Principals) * cfg.HotFrac)
	pick := func() int {
		if hot > 0 && hot < cfg.Principals && rng.Intn(10) != 0 {
			return rng.Intn(hot)
		}
		return rng.Intn(cfg.Principals)
	}
	latencies := make([]int64, cfg.Ops)
	res.Ops = cfg.Ops
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	churnStart := time.Now()
	for op := 0; op < cfg.Ops; op++ {
		if cfg.RevokeEvery > 0 && op%cfg.RevokeEvery == cfg.RevokeEvery-1 {
			victim := pick()
			login.Deactivate(logins[victim].Ref.Serial, "logout")
			res.Revocations++
			if err := enter(victim); err != nil {
				return ChurnResult{}, fmt.Errorf("re-login after revocation: %w", err)
			}
			res.Relogins++
		}
		i := pick()
		t0 := time.Now()
		_, err := guard.Invoke(principalID(i), "enter", nil, core.Presented{RMCs: []cert.RMC{logins[i]}})
		latencies[op] = time.Since(t0).Nanoseconds()
		if err == nil {
			res.Authorized++
		} else {
			// A cascade still propagating may deny the op that raced it;
			// anything more than that sliver is a violation.
			res.Denied++
		}
	}
	res.ChurnElapsed = time.Since(churnStart)
	runtime.ReadMemStats(&ms)
	res.AllocsPerOp = float64(ms.Mallocs-mallocsBefore) / float64(cfg.Ops)
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	res.P50Ns = latencies[len(latencies)/2]
	res.P99Ns = latencies[len(latencies)*99/100]
	if res.Denied > res.Revocations {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"%d denials for %d revocations: denials must only come from in-flight cascades",
			res.Denied, res.Revocations))
	}

	// Phase 3 — appointment-expiry waves: certificates that outlive
	// sessions die by clock, not by event. Each wave issues a batch of
	// short-lived badges through the appointer rule, proves they
	// authorize, then advances simulated time past the expiry and proves
	// they stopped.
	appointer := principalID(0)
	appointerCreds := core.Presented{RMCs: []cert.RMC{logins[0]}}
	for wave := 0; wave < cfg.ApptWaves; wave++ {
		batch := make([]cert.AppointmentCertificate, 0, cfg.ApptsPerWave)
		for k := 0; k < cfg.ApptsPerWave; k++ {
			a, err := login.Appoint(appointer, core.AppointmentRequest{
				Kind:      "badge",
				Holder:    principalID(pick()),
				ExpiresAt: clk.Now().Add(time.Hour),
			}, appointerCreds)
			if err != nil {
				return ChurnResult{}, fmt.Errorf("wave %d appoint: %w", wave, err)
			}
			batch = append(batch, a)
			res.ApptIssued++
		}
		probe := batch[rng.Intn(len(batch))]
		if _, err := guard.Invoke(probe.Holder, "enter_badged", nil,
			core.Presented{Appointments: []cert.AppointmentCertificate{probe}}); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"wave %d: live badge refused: %v", wave, err))
		}
		clk.Advance(2 * time.Hour) // the whole wave expires
		for _, a := range batch {
			if _, err := guard.Invoke(a.Holder, "enter_badged", nil,
				core.Presented{Appointments: []cert.AppointmentCertificate{a}}); err != nil {
				res.ApptExpired++
			} else {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"wave %d: badge %d authorized after expiry", wave, a.Serial))
			}
		}
	}

	// Phase 4 — cascade collapse: one root login credential carrying
	// CascadeCerts dependent role entries at the consumer, collapsed by a
	// single deactivation. This is the paper's active-security promise at
	// capacity scale: revocation cost follows the dependent set.
	if cfg.CascadeCerts > 0 {
		rootID := "cascade_root"
		rootRMC, err := login.Activate(rootID, userRole, core.Presented{})
		if err != nil {
			return ChurnResult{}, err
		}
		rootCreds := core.Presented{RMCs: []cert.RMC{rootRMC}}
		deps := make([]uint64, cfg.CascadeCerts)
		for k := 0; k < cfg.CascadeCerts; k++ {
			rmc, err := guard.Activate(rootID, insideRole, rootCreds)
			if err != nil {
				return ChurnResult{}, fmt.Errorf("cascade entry %d: %w", k, err)
			}
			deps[k] = rmc.Ref.Serial
		}
		res.CascadeCerts = cfg.CascadeCerts
		t0 := time.Now()
		login.Deactivate(rootRMC.Ref.Serial, "cascade")
		broker.Quiesce()
		res.CascadeCollapseNs = time.Since(t0).Nanoseconds()
		res.CascadeOK = true
		for _, serial := range deps {
			if valid, _ := guard.CRStatus(serial); valid {
				res.CascadeOK = false
				res.Violations = append(res.Violations, fmt.Sprintf(
					"cascade left dependent serial %d live", serial))
				break
			}
		}
	}
	return res, nil
}
