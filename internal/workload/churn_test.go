package workload

import "testing"

func TestChurnSmoke(t *testing.T) {
	for _, baseline := range []bool{false, true} {
		cfg := ChurnConfig{
			Seed:            7,
			Principals:      400,
			Ops:             2000,
			HotFrac:         0.1,
			RevokeEvery:     100,
			ApptWaves:       2,
			ApptsPerWave:    10,
			CascadeCerts:    300,
			CacheMaxEntries: 128,
			Baseline:        baseline,
		}
		res, err := Churn(cfg)
		if err != nil {
			t.Fatalf("baseline=%v: %v", baseline, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("baseline=%v violations: %v", baseline, res.Violations)
		}
		if res.ResidentCRs < int64(2*cfg.Principals) {
			t.Errorf("baseline=%v resident CRs = %d, want >= %d", baseline, res.ResidentCRs, 2*cfg.Principals)
		}
		if res.BytesPerPrincipal <= 0 {
			t.Errorf("baseline=%v bytes/principal = %.0f, want > 0", baseline, res.BytesPerPrincipal)
		}
		if res.P99Ns <= 0 || res.P50Ns > res.P99Ns {
			t.Errorf("baseline=%v latency percentiles p50=%d p99=%d", baseline, res.P50Ns, res.P99Ns)
		}
		if res.ApptIssued != cfg.ApptWaves*cfg.ApptsPerWave || res.ApptExpired != res.ApptIssued {
			t.Errorf("baseline=%v appts issued=%d expired=%d, want %d of each",
				baseline, res.ApptIssued, res.ApptExpired, cfg.ApptWaves*cfg.ApptsPerWave)
		}
		if !res.CascadeOK {
			t.Errorf("baseline=%v cascade did not fully collapse", baseline)
		}
		if !baseline && res.CachedValidations > int64(cfg.CacheMaxEntries) {
			t.Errorf("cached validations %d exceed bound %d", res.CachedValidations, cfg.CacheMaxEntries)
		}
	}
}
