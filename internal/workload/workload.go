// Package workload generates the synthetic healthcare workload that
// substitutes for the paper's hospital deployment (DESIGN.md Sect. 4): a
// hospital service with the parametrised treating_doctor role driven by a
// duty rota and patient register, a records service guarded by
// authorization rules with per-patient exclusions, and continuous churn of
// rota, registrations and exclusions. Runs check the active-security
// invariants on every step: no live role whose membership conditions have
// become false (I4), no authorized access that policy should deny, and no
// denial of an access policy should permit.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/cert"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/store"
)

// Config parameterises a run. All randomness derives from Seed.
type Config struct {
	Seed     int64
	Doctors  int
	Patients int
	// Ops is the number of record accesses attempted.
	Ops int
	// ChurnEvery inserts a rota/register/exclusion change every N ops
	// (0 disables churn).
	ChurnEvery int
}

// Result reports what happened.
type Result struct {
	Reads        int // authorized record reads
	Denied       int // refused accesses (policy said no)
	Activations  int // treating_doctor activations performed
	Revocations  int // roles collapsed by churn
	Churns       int
	AuditRecords int
	Violations   []string // invariant breaches (must be empty)
	Elapsed      time.Duration
}

// Run executes the workload and returns the result. Any entry in
// Result.Violations is a bug in the engine or the harness.
func Run(cfg Config) (Result, error) {
	if cfg.Doctors < 1 || cfg.Patients < 1 || cfg.Ops < 1 {
		return Result{}, fmt.Errorf("workload: doctors, patients and ops must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	broker := event.NewBroker()
	defer broker.Close()
	bus := rpc.NewLoopback()
	clk := clock.NewSimulated(time.Date(2001, 11, 12, 8, 0, 0, 0, time.UTC))
	db := store.New()

	hospital, err := core.NewService(core.Config{
		Name: "hospital",
		Policy: policy.MustParse(`
hospital.treating_doctor(D, P) <- env on_duty(D), env registered(D, P) keep [1, 2].
`),
		Broker: broker,
		Caller: bus,
		Clock:  clk,
	})
	if err != nil {
		return Result{}, err
	}
	defer hospital.Close()
	hospital.Env().RegisterStore("on_duty", db, "on_duty")
	hospital.Env().RegisterStore("registered", db, "registered")
	hospital.WatchStore(db, map[string]string{"on_duty": "on_duty", "registered": "registered"})
	bus.Register("hospital", hospital.Handler())

	records, err := core.NewService(core.Config{
		Name: "records",
		Policy: policy.MustParse(`
auth read_record(D, P) <- hospital.treating_doctor(D, P), !env excluded(D, P).
`),
		Broker:           broker,
		Caller:           bus,
		Clock:            clk,
		CacheValidations: true,
	})
	if err != nil {
		return Result{}, err
	}
	defer records.Close()
	records.Env().RegisterStore("excluded", db, "excluded")
	records.WatchStore(db, map[string]string{"excluded": "excluded"})
	records.Bind("read_record", func(args []names.Term) ([]byte, error) {
		return []byte("ehr"), nil
	})
	bus.Register("records", records.Handler())

	authority, err := audit.NewAuthority("civ", clk)
	if err != nil {
		return Result{}, err
	}
	ledger := audit.NewLedger()
	audit.AttachTo(records, authority, ledger, nil)

	// World state mirrors (the harness's own view of the facts).
	type pair struct{ d, p int }
	onDuty := make(map[int]bool)
	registered := make(map[pair]bool)
	excluded := make(map[pair]bool)

	doctorAtom := func(d int) names.Term { return names.Atom(fmt.Sprintf("dr_%d", d)) }
	patientAtom := func(p int) names.Term { return names.Atom(fmt.Sprintf("p_%d", p)) }

	assert := func(rel string, args ...names.Term) error {
		_, err := db.Assert(rel, args...)
		return err
	}
	retract := func(rel string, args ...names.Term) error {
		_, err := db.Retract(rel, args...)
		return err
	}

	// Initial population: every doctor on duty, each patient registered
	// with one doctor.
	for d := 0; d < cfg.Doctors; d++ {
		if err := assert("on_duty", doctorAtom(d)); err != nil {
			return Result{}, err
		}
		onDuty[d] = true
	}
	for p := 0; p < cfg.Patients; p++ {
		d := rng.Intn(cfg.Doctors)
		if err := assert("registered", doctorAtom(d), patientAtom(p)); err != nil {
			return Result{}, err
		}
		registered[pair{d, p}] = true
	}

	// Per-doctor sessions and their live treating_doctor RMCs.
	sessions := make([]*core.Session, cfg.Doctors)
	for d := range sessions {
		s, err := core.NewSession(nil)
		if err != nil {
			return Result{}, err
		}
		sessions[d] = s
	}
	type rmcInfo struct {
		rmc cert.RMC
		d   int
		p   int
	}
	live := make(map[pair]rmcInfo)

	var res Result
	start := time.Now()

	conditionsHold := func(d, p int) bool {
		return onDuty[d] && registered[pair{d, p}]
	}
	mayRead := func(d, p int) bool {
		return conditionsHold(d, p) && !excluded[pair{d, p}]
	}

	checkInvariants := func(step string) {
		for key, info := range live {
			valid, _ := hospital.CRStatus(info.rmc.Ref.Serial)
			if valid && !conditionsHold(key.d, key.p) {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"%s: role %s live although conditions are false", step, info.rmc.Role))
			}
			if !valid {
				res.Revocations++
				delete(live, key)
			}
		}
	}

	churn := func() error {
		res.Churns++
		switch rng.Intn(4) {
		case 0: // a doctor goes off duty
			d := rng.Intn(cfg.Doctors)
			if onDuty[d] {
				if err := retract("on_duty", doctorAtom(d)); err != nil {
					return err
				}
				onDuty[d] = false
			}
		case 1: // a doctor comes back on duty
			d := rng.Intn(cfg.Doctors)
			if !onDuty[d] {
				if err := assert("on_duty", doctorAtom(d)); err != nil {
					return err
				}
				onDuty[d] = true
			}
		case 2: // a patient flips an exclusion
			d := rng.Intn(cfg.Doctors)
			p := rng.Intn(cfg.Patients)
			key := pair{d, p}
			if excluded[key] {
				if err := retract("excluded", doctorAtom(d), patientAtom(p)); err != nil {
					return err
				}
				delete(excluded, key)
			} else {
				if err := assert("excluded", doctorAtom(d), patientAtom(p)); err != nil {
					return err
				}
				excluded[key] = true
			}
		case 3: // a patient re-registers with another doctor
			p := rng.Intn(cfg.Patients)
			var oldD = -1
			for d := 0; d < cfg.Doctors; d++ {
				if registered[pair{d, p}] {
					oldD = d
					break
				}
			}
			newD := rng.Intn(cfg.Doctors)
			if oldD >= 0 && oldD != newD {
				if err := retract("registered", doctorAtom(oldD), patientAtom(p)); err != nil {
					return err
				}
				delete(registered, pair{oldD, p})
			}
			if !registered[pair{newD, p}] {
				if err := assert("registered", doctorAtom(newD), patientAtom(p)); err != nil {
					return err
				}
				registered[pair{newD, p}] = true
			}
		}
		broker.Quiesce()
		checkInvariants("after churn")
		return nil
	}

	for op := 0; op < cfg.Ops; op++ {
		if cfg.ChurnEvery > 0 && op%cfg.ChurnEvery == cfg.ChurnEvery-1 {
			if err := churn(); err != nil {
				return Result{}, err
			}
		}
		d := rng.Intn(cfg.Doctors)
		p := rng.Intn(cfg.Patients)
		key := pair{d, p}
		sess := sessions[d]

		// Ensure an RMC when policy permits one.
		info, haveRMC := live[key]
		if haveRMC {
			if valid, _ := hospital.CRStatus(info.rmc.Ref.Serial); !valid {
				res.Revocations++
				delete(live, key)
				haveRMC = false
			}
		}
		if !haveRMC && conditionsHold(d, p) {
			rmc, err := hospital.Activate(sess.PrincipalID(),
				names.MustRole(names.MustRoleName("hospital", "treating_doctor", 2),
					doctorAtom(d), patientAtom(p)), core.Presented{})
			if err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"op %d: activation refused although conditions hold: %v", op, err))
				continue
			}
			res.Activations++
			live[key] = rmcInfo{rmc: rmc, d: d, p: p}
			haveRMC = true
		}

		// Attempt the read with whatever credential exists.
		var presented core.Presented
		if info, ok := live[key]; ok {
			presented = core.Presented{RMCs: []cert.RMC{info.rmc}}
		}
		_, err := records.Invoke(sess.PrincipalID(), "read_record",
			[]names.Term{doctorAtom(d), patientAtom(p)}, presented)
		allowed := err == nil
		should := mayRead(d, p) && haveRMC
		switch {
		case allowed && !mayRead(d, p):
			res.Violations = append(res.Violations, fmt.Sprintf(
				"op %d: dr_%d read p_%d although policy forbids it", op, d, p))
		case !allowed && should:
			res.Violations = append(res.Violations, fmt.Sprintf(
				"op %d: dr_%d denied p_%d although policy permits it: %v", op, d, p, err))
		}
		if allowed {
			res.Reads++
		} else {
			res.Denied++
		}
	}
	broker.Quiesce()
	checkInvariants("final")
	res.Elapsed = time.Since(start)

	// Audit completeness: one record per authorized read.
	total := 0
	for d := range sessions {
		total += len(ledger.HistoryOf(sessions[d].PrincipalID()))
	}
	res.AuditRecords = total
	if total != res.Reads {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"audit records %d != authorized reads %d", total, res.Reads))
	}
	return res, nil
}
