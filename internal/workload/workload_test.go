package workload

import (
	"testing"
)

func TestSoakSmallNoChurn(t *testing.T) {
	res, err := Run(Config{Seed: 1, Doctors: 3, Patients: 10, Ops: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Reads == 0 {
		t.Error("no reads succeeded")
	}
	// Without churn no revocations occur.
	if res.Revocations != 0 {
		t.Errorf("revocations = %d without churn", res.Revocations)
	}
	if res.AuditRecords != res.Reads {
		t.Errorf("audit = %d, reads = %d", res.AuditRecords, res.Reads)
	}
}

func TestSoakWithChurn(t *testing.T) {
	res, err := Run(Config{Seed: 2, Doctors: 5, Patients: 40, Ops: 1500, ChurnEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[:min(len(res.Violations), 5)])
	}
	if res.Churns == 0 || res.Revocations == 0 {
		t.Errorf("churn did not bite: churns=%d revocations=%d", res.Churns, res.Revocations)
	}
	if res.Reads == 0 || res.Denied == 0 {
		t.Errorf("degenerate mix: reads=%d denied=%d", res.Reads, res.Denied)
	}
}

func TestSoakDeterministicPerSeed(t *testing.T) {
	a, err := Run(Config{Seed: 7, Doctors: 4, Patients: 20, Ops: 400, ChurnEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, Doctors: 4, Patients: 20, Ops: 400, ChurnEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads != b.Reads || a.Denied != b.Denied || a.Churns != b.Churns {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSoakManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep skipped in -short")
	}
	for seed := int64(10); seed < 18; seed++ {
		res, err := Run(Config{Seed: seed, Doctors: 4, Patients: 25, Ops: 600, ChurnEvery: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d violations: %v", seed, res.Violations[:min(len(res.Violations), 3)])
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
