// Package oasis is the public API of this reproduction of "Access Control
// and Trust in the Use of Widely Distributed Services" (Bacon, Moody & Yao,
// Middleware 2001): the OASIS role-based access control architecture.
//
// OASIS in one paragraph: services define their own parametrised roles and
// publish Horn-clause policy for activating them and for invoking methods.
// A principal starts a session by activating an initial role (e.g. a login
// role), collects role membership certificates (RMCs) as it activates
// further roles, and presents them as credentials. Conditions marked in a
// rule's membership clause are monitored through an event infrastructure:
// the moment one fails, the role is deactivated and every dependent role
// collapses. Long-lived credentials are appointment certificates, issued by
// principals active in appointer roles; cross-domain use is governed by
// service level agreements with callback validation; audit certificates
// record interaction histories for trust decisions between strangers.
//
// Quickstart:
//
//	broker := oasis.NewBroker()
//	defer broker.Close()
//	bus := oasis.NewBus()
//
//	login, _ := oasis.NewService(oasis.Config{
//	    Name:   "login",
//	    Policy: oasis.MustParsePolicy(`login.user <- env password_ok.`),
//	    Broker: broker, Caller: bus,
//	})
//	bus.Register("login", login.Handler())
//	login.Env().Register("password_ok", ...)
//
//	session, _ := oasis.NewSession(nil)
//	rmc, err := login.Activate(session.PrincipalID(),
//	    oasis.MustRole(oasis.MustRoleName("login", "user", 0)), oasis.Presented{})
//
// See the examples directory for complete scenarios from the paper:
// quickstart, the cross-domain electronic health record session (Fig. 3),
// the visiting doctor (Sect. 5), the anonymous clinic (Sect. 5), and the
// web of trust between strangers (Sect. 6).
package oasis

import (
	"repro/internal/audit"
	"repro/internal/baseline"
	"repro/internal/cert"
	"repro/internal/civ"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/event"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/seal"
	"repro/internal/sign"
	"repro/internal/store"
	"repro/internal/trust"
)

// Naming and terms (parametrised roles, Sect. 2).
type (
	// Term is a policy-language term: variable, atom, string or integer.
	Term = names.Term
	// RoleName is a service-qualified role name with its arity.
	RoleName = names.RoleName
	// Role is a role name applied to parameter terms.
	Role = names.Role
	// Substitution maps policy variables to terms.
	Substitution = names.Substitution
	// TermKind discriminates term variants.
	TermKind = names.TermKind
)

// Term kinds.
const (
	KindVar    = names.KindVar
	KindAtom   = names.KindAtom
	KindString = names.KindString
	KindInt    = names.KindInt
)

// Term constructors.
var (
	// Var returns a variable term (upper-case by convention).
	Var = names.Var
	// Atom returns a symbolic constant term.
	Atom = names.Atom
	// Str returns a string constant term.
	Str = names.Str
	// Int returns an integer constant term.
	Int = names.Int
	// NewRoleName validates and builds a role name.
	NewRoleName = names.NewRoleName
	// MustRoleName panics on invalid input; for fixtures.
	MustRoleName = names.MustRoleName
	// NewRole pairs a role name with parameters, enforcing arity.
	NewRole = names.NewRole
	// MustRole panics on invalid input; for fixtures.
	MustRole = names.MustRole
	// NewSubstitution returns an empty substitution.
	NewSubstitution = names.NewSubstitution
)

// Policy (role activation rules, authorization rules, Sect. 2).
type (
	// Policy is a parsed policy document.
	Policy = policy.Policy
	// Rule is a role activation rule with its membership clause.
	Rule = policy.Rule
	// AuthRule is a method authorization rule.
	AuthRule = policy.AuthRule
	// Registry holds environmental predicate implementations.
	Registry = policy.Registry
	// Predicate evaluates one environmental constraint.
	Predicate = policy.Predicate
	// PolicyIssue is a finding from the static consistency checker.
	PolicyIssue = policy.Issue
	// PolicyChecker checks referential consistency across the policies
	// of a set of services.
	PolicyChecker = policy.Checker
)

var (
	// ParsePolicy parses policy text.
	ParsePolicy = policy.Parse
	// MustParsePolicy panics on bad policy text; for fixtures.
	MustParsePolicy = policy.MustParse
	// NewRegistry creates a predicate registry with comparison builtins.
	NewRegistry = policy.NewRegistry
	// NewPolicyChecker creates an empty consistency checker; Federation
	// exposes CheckConsistency over everything it registers.
	NewPolicyChecker = policy.NewChecker
	// PolicyErrors filters checker findings to severity "error".
	PolicyErrors = policy.Errors
)

// Certificates (Fig. 4, Sect. 4).
type (
	// RMC is a role membership certificate.
	RMC = cert.RMC
	// CRR is a credential record reference locating the issuer.
	CRR = cert.CRR
	// AppointmentCertificate is a long-lived credential (Sect. 2).
	AppointmentCertificate = cert.AppointmentCertificate
)

// Engine (Figs. 1, 2, 5; Sects. 2-4).
type (
	// Service is an OASIS-secured service.
	Service = core.Service
	// Config configures a Service.
	Config = core.Config
	// Stats counts service activity.
	Stats = core.Stats
	// Session is a principal's session state and certificate wallet.
	Session = core.Session
	// Presented is a credential bundle submitted with a request.
	Presented = core.Presented
	// AppointmentRequest describes an appointment to issue.
	AppointmentRequest = core.AppointmentRequest
	// InvokeRecord describes a successful authorized invocation.
	InvokeRecord = core.InvokeRecord
	// MethodImpl is application logic behind an access-controlled
	// method.
	MethodImpl = core.MethodImpl
	// Client invokes services through an rpc transport.
	Client = core.Client
)

var (
	// NewService constructs a service.
	NewService = core.NewService
	// NewSession creates a session with a fresh key pair.
	NewSession = core.NewSession
	// NewClient wraps a transport for remote activation/invocation.
	NewClient = core.NewClient
	// WatchLiveness guards a foreign certificate with a heartbeat
	// monitor so issuer silence fails safe.
	WatchLiveness = core.WatchLiveness
)

// Engine errors, re-exported for errors.Is matching.
var (
	ErrActivationDenied  = core.ErrActivationDenied
	ErrInvocationDenied  = core.ErrInvocationDenied
	ErrInvalidCredential = core.ErrInvalidCredential
	ErrUnknownRole       = core.ErrUnknownRole
	ErrRevoked           = core.ErrRevoked
	ErrAppointmentDenied = core.ErrAppointmentDenied
)

// Event infrastructure (Sect. 4, Fig. 5).
type (
	// Broker is the active-middleware event broker.
	Broker = event.Broker
	// Event is a notification on a channel.
	Event = event.Event
	// HeartbeatMonitor turns issuer silence into fail-safe revocation.
	HeartbeatMonitor = event.HeartbeatMonitor
	// EventRelay bridges brokers across processes so revocation events
	// reach services on other nodes.
	EventRelay = event.Relay
)

var (
	// NewBroker creates an event broker.
	NewBroker = event.NewBroker
	// NewHeartbeatMonitor creates a heartbeat monitor.
	NewHeartbeatMonitor = event.NewHeartbeatMonitor
	// NewEventRelay attaches a relay to a broker under a node name.
	NewEventRelay = event.NewRelay
	// MarshalEvent / UnmarshalEvent are the relay wire codec.
	MarshalEvent   = event.MarshalEvent
	UnmarshalEvent = event.UnmarshalEvent
)

// Transports.
type (
	// Bus is the in-process transport with fault injection.
	Bus = rpc.Loopback
	// TCPServer serves service handlers over TCP.
	TCPServer = rpc.TCPServer
	// TCPClient calls services over TCP.
	TCPClient = rpc.TCPClient
	// Directory routes calls to services spread over several TCP
	// endpoints (the cmd/oasisd deployment shape).
	Directory = rpc.Directory
)

var (
	// NewBus creates an in-process transport.
	NewBus = rpc.NewLoopback
	// NewTCPServer creates a TCP transport server.
	NewTCPServer = rpc.NewTCPServer
	// DialTCP connects a TCP transport client.
	DialTCP = rpc.DialTCP
	// NewDirectory creates a multi-endpoint service directory.
	NewDirectory = rpc.NewDirectory
)

// Encrypted communication (Sect. 4.1).
type (
	// SealIdentity is a long-lived X25519 identity for sealed
	// communication.
	SealIdentity = seal.Identity
	// SealedEnvelope is one sealed message.
	SealedEnvelope = seal.Envelope
	// SealDirectory maps service names to sealing public keys.
	SealDirectory = seal.Directory
	// SealedCaller seals request bodies end to end over any transport.
	SealedCaller = seal.Caller
)

var (
	// NewSealIdentity generates a sealing identity.
	NewSealIdentity = seal.NewIdentity
	// NewSealDirectory creates an empty key directory.
	NewSealDirectory = seal.NewDirectory
	// NewSealedCaller wraps a transport with end-to-end sealing.
	NewSealedCaller = seal.NewCaller
	// SealedHandler wraps a service handler to accept sealed requests
	// and seal responses back to the caller.
	SealedHandler = seal.Handler
)

// Facts and time.
type (
	// FactStore is the embedded relation store for environmental
	// predicates.
	FactStore = store.Store
	// Clock abstracts time for constraints and expiry.
	Clock = clock.Clock
	// SimClock is a manually advanced clock for tests and experiments.
	SimClock = clock.Simulated
)

var (
	// NewFactStore creates an empty fact store.
	NewFactStore = store.New
	// NewSimClock creates a simulated clock.
	NewSimClock = clock.NewSimulated
)

// RealClock returns the wall-clock time source.
func RealClock() Clock { return clock.Real{} }

// Multi-domain federation (Sects. 3, 5).
type (
	// Federation registers domains, services and agreements.
	Federation = domain.Federation
	// SLA is a service level agreement.
	SLA = domain.SLA
	// ApptRef names an appointment credential type in an SLA.
	ApptRef = domain.ApptRef
	// GroupMembership is the negotiated group-membership helper.
	GroupMembership = domain.GroupMembership
	// AnonymousSession is a pseudonymous session with an anonymised
	// credential.
	AnonymousSession = domain.AnonymousSession
)

var (
	// NewFederation creates an empty federation.
	NewFederation = domain.NewFederation
	// NewAnonymousSession creates a pseudonymous session (Sect. 5).
	NewAnonymousSession = domain.NewAnonymousSession
	// ErrNoSLA reports a credential with no covering agreement.
	ErrNoSLA = domain.ErrNoSLA
)

// CIV: replicated certificate issuing and validation (Sect. 4, ref [10]).
type (
	// CIVCluster is a replicated credential-record service.
	CIVCluster = civ.Cluster
	// CIVRecord is the CIV view of a certificate's validity.
	CIVRecord = civ.Record
	// RecordStore holds credential-record validity state for services.
	RecordStore = core.RecordStore
	// RecordStatus is a RecordStore read.
	RecordStatus = core.RecordStatus
	// CIVRecords adapts a CIV cluster to the RecordStore interface so a
	// domain's services can share the one highly available issuing and
	// validation service (paper ref [10]).
	CIVRecords = domain.CIVRecords
)

var (
	// NewCIVCluster creates a CIV cluster of n replicas.
	NewCIVCluster = civ.NewCluster
	// NewCIVRecords wraps a CIV cluster as a RecordStore.
	NewCIVRecords = domain.NewCIVRecords
)

// Audit and trust (Sect. 6).
type (
	// AuditAuthority issues and validates audit certificates.
	AuditAuthority = audit.Authority
	// AuditCertificate records one certified interaction.
	AuditCertificate = audit.Certificate
	// AuditLedger accumulates parties' interaction histories.
	AuditLedger = audit.Ledger
	// AuditOutcome classifies how an interaction ended.
	AuditOutcome = audit.Outcome
	// TrustPolicy sets a relying party's risk appetite.
	TrustPolicy = trust.Policy
	// TrustEngine evaluates histories under a policy.
	TrustEngine = trust.Engine
	// TrustDecision is the outcome of a trust evaluation.
	TrustDecision = trust.Decision
)

var (
	// NewAuditAuthority creates an audit authority.
	NewAuditAuthority = audit.NewAuthority
	// NewAuditLedger creates an empty ledger.
	NewAuditLedger = audit.NewLedger
	// AttachAudit wires an authority and ledger to a service.
	AttachAudit = audit.AttachTo
	// NewTrustEngine builds a trust engine.
	NewTrustEngine = trust.NewEngine
	// DefaultTrustPolicy is a reasonable starting policy.
	DefaultTrustPolicy = trust.DefaultPolicy
)

// Audit outcomes.
const (
	OutcomeFulfilled      = audit.OutcomeFulfilled
	OutcomeClientDefault  = audit.OutcomeClientDefault
	OutcomeServiceDefault = audit.OutcomeServiceDefault
)

// Session keys and challenge-response (Sect. 4.1).
type (
	// SessionKey is an Ed25519 session key pair.
	SessionKey = sign.SessionKey
	// Challenge is an ISO/9798-style challenge.
	Challenge = sign.Challenge
	// ChallengeResponse is the client's proof of key possession.
	ChallengeResponse = sign.Response
	// Challenger issues and checks challenges service-side.
	Challenger = sign.Challenger
)

// Baselines for comparison (Sect. 1; experiment E9).
type (
	// ACLBaseline is the per-object access-control-list comparator.
	ACLBaseline = baseline.ACLService
	// RBAC0Baseline is the unparametrised-RBAC comparator.
	RBAC0Baseline = baseline.RBAC0Service
	// DelegationBaseline is the delegation-based RBAC comparator.
	DelegationBaseline = baseline.DelegationService
	// PollingBaseline is the polling-revocation comparator.
	PollingBaseline = baseline.PollingRevoker
)

var (
	// NewACLBaseline creates an empty ACL store.
	NewACLBaseline = baseline.NewACLService
	// NewRBAC0Baseline creates an empty RBAC0 store.
	NewRBAC0Baseline = baseline.NewRBAC0Service
	// NewDelegationBaseline creates an empty delegation store.
	NewDelegationBaseline = baseline.NewDelegationService
	// NewPollingBaseline creates a polling revoker.
	NewPollingBaseline = baseline.NewPollingRevoker
)
