package oasis_test

import (
	"errors"
	"testing"
	"time"

	oasis "repro"
)

// TestPublicAPIQuickstart drives the Fig. 2 flow end-to-end through the
// exported API only: role entry (paths 1-2) and service use (paths 3-4).
func TestPublicAPIQuickstart(t *testing.T) {
	broker := oasis.NewBroker()
	defer broker.Close()
	bus := oasis.NewBus()

	login, err := oasis.NewService(oasis.Config{
		Name:   "login",
		Policy: oasis.MustParsePolicy(`login.user(U) <- env credentials_ok(U).`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer login.Close()
	bus.Register("login", login.Handler())
	login.Env().Register("credentials_ok", func(args []oasis.Term, s oasis.Substitution) []oasis.Substitution {
		if ext, ok := oasis.MustRole(oasis.MustRoleName("x", "y", 1), args[0]).
			Unify(oasis.MustRole(oasis.MustRoleName("x", "y", 1), oasis.Atom("alice")), s); ok {
			return []oasis.Substitution{ext}
		}
		return nil
	})

	files, err := oasis.NewService(oasis.Config{
		Name: "files",
		Policy: oasis.MustParsePolicy(`
files.reader(U) <- login.user(U) keep [1].
auth read(F) <- files.reader(U).
`),
		Broker: broker,
		Caller: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer files.Close()
	bus.Register("files", files.Handler())
	files.Bind("read", func(args []oasis.Term) ([]byte, error) {
		return []byte("data:" + args[0].String()), nil
	})

	sess, err := oasis.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	rmc, err := login.Activate(sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("login", "user", 1), oasis.Atom("alice")),
		oasis.Presented{})
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(rmc)

	readerRMC, err := files.Activate(sess.PrincipalID(),
		oasis.MustRole(oasis.MustRoleName("files", "reader", 1), oasis.Var("U")),
		sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	sess.AddRMC(readerRMC)

	out, err := files.Invoke(sess.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("report")}, sess.Credentials())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "data:report" {
		t.Errorf("out = %q", out)
	}

	// Logout collapses the session tree; the reader role dies with it.
	login.Deactivate(rmc.Ref.Serial, "logout")
	broker.Quiesce()
	if valid, _ := files.CRStatus(readerRMC.Ref.Serial); valid {
		t.Error("reader role survived logout")
	}
	if _, err := files.Invoke(sess.PrincipalID(), "read",
		[]oasis.Term{oasis.Atom("report")}, sess.Credentials()); !errors.Is(err, oasis.ErrInvalidCredential) {
		t.Errorf("invocation after logout: %v", err)
	}
}

func TestPublicAPIClockAndStore(t *testing.T) {
	clk := oasis.NewSimClock(time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC))
	if got := clk.Now().Year(); got != 2001 {
		t.Errorf("year = %d", got)
	}
	db := oasis.NewFactStore()
	if _, err := db.Assert("r", oasis.Atom("a")); err != nil {
		t.Fatal(err)
	}
	if !db.Contains("r", oasis.Atom("a")) {
		t.Error("fact missing")
	}
	if oasis.RealClock() == nil {
		t.Error("RealClock nil")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	acl := oasis.NewACLBaseline()
	acl.Grant("o", "p", "read")
	if !acl.Check("o", "p", "read") {
		t.Error("acl check failed")
	}
	rbac := oasis.NewRBAC0Baseline()
	rbac.AssignUser("u", "r")
	rbac.AssignPermission("r", "perm")
	if !rbac.Check("u", "perm") {
		t.Error("rbac0 check failed")
	}
	d := oasis.NewDelegationBaseline()
	d.AddMember("role", "u")
	if !d.Holds("role", "u") {
		t.Error("delegation membership failed")
	}
}
